package rtree

import (
	"errors"
	"fmt"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// Tree is a disk-resident R-tree. All node access is routed through the
// buffer pool given at construction; buffer misses show up in the
// underlying store's physical I/O counter, which is the paper's I/O
// metric.
type Tree struct {
	pool   *pagestore.BufferPool
	dims   int
	root   pagestore.PageID
	height int // 1 = root is a leaf
	size   int // number of stored items

	maxLeaf     int
	maxInternal int
	minLeaf     int
	minInternal int

	// decode adapts decodeNode to the pool's decoded-cache hook; built
	// once so warm reads allocate nothing.
	decode func(pagestore.PageID, []byte) (any, error)
}

// ErrNotFound is returned by Delete when the item is absent.
var ErrNotFound = errors.New("rtree: item not found")

// minFillRatio is the classic 40 % minimum node occupancy.
const minFillRatio = 0.4

// New creates an empty tree of the given dimensionality on the pool.
func New(pool *pagestore.BufferPool, dims int) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: invalid dimensionality %d", dims)
	}
	t := &Tree{pool: pool, dims: dims, root: pagestore.InvalidPage}
	t.decode = func(id pagestore.PageID, data []byte) (any, error) {
		return decodeNode(id, data, t.dims)
	}
	t.maxLeaf = leafCapacity(pool.PageSize(), dims)
	t.maxInternal = internalCapacity(pool.PageSize(), dims)
	if t.maxLeaf < 2 || t.maxInternal < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d dims", pool.PageSize(), dims)
	}
	t.minLeaf = max(1, int(minFillRatio*float64(t.maxLeaf)))
	t.minInternal = max(1, int(minFillRatio*float64(t.maxInternal)))
	root := &Node{Leaf: true}
	id, err := t.allocNode(root)
	if err != nil {
		return nil, err
	}
	t.setRoot(id)
	t.height = 1
	return t, nil
}

// setRoot moves the root pointer, keeping the root page pinned in the
// pool's decoded-node cache: every traversal starts at the root, so its
// decoded form is kept through evictions (re-reads are still physically
// performed and counted — only the re-decode is skipped).
func (t *Tree) setRoot(id pagestore.PageID) {
	if t.root == id {
		return
	}
	if t.root != pagestore.InvalidPage {
		t.pool.Unpin(t.root)
	}
	t.root = id
	if id != pagestore.InvalidPage {
		t.pool.Pin(id)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root page ID.
func (t *Tree) Root() pagestore.PageID { return t.root }

// Pool returns the buffer pool backing the tree.
func (t *Tree) Pool() *pagestore.BufferPool { return t.pool }

// NumPages returns the number of pages the tree occupies.
func (t *Tree) NumPages() int { return t.pool.Store().NumPages() }

// MaxLeafEntries exposes the leaf fan-out (used by bulk loading and tests).
func (t *Tree) MaxLeafEntries() int { return t.maxLeaf }

// MaxInternalEntries exposes the internal fan-out.
func (t *Tree) MaxInternalEntries() int { return t.maxInternal }

// ReadNode fetches a node, going through the buffer pool (the access is
// I/O-counted). The returned Node comes from the pool's decoded-node
// cache: it is shared, immutable, and remains valid indefinitely (cache
// invalidation detaches it, it is never mutated in place). Callers that
// need to modify a node must use readNodeForUpdate.
func (t *Tree) ReadNode(id pagestore.PageID) (*Node, error) {
	obj, err := t.pool.GetDecoded(id, t.decode)
	if err != nil {
		return nil, err
	}
	return obj.(*Node), nil
}

// readNodeForUpdate returns a privately owned copy of a node for the
// insert/delete paths. The entry slice is fresh (with one spare slot, the
// common growth); entry rectangles still alias the shared immutable
// coordinate storage, which is safe because update paths replace whole
// Rect values and never write through Min/Max.
func (t *Tree) readNodeForUpdate(id pagestore.PageID) (*Node, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return nil, err
	}
	c := &Node{Page: n.Page, Leaf: n.Leaf, Entries: make([]Entry, len(n.Entries), len(n.Entries)+1)}
	copy(c.Entries, n.Entries)
	return c, nil
}

// RootRect returns the MBR of the whole tree (one root access).
func (t *Tree) RootRect() (geom.Rect, error) {
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	if len(n.Entries) == 0 {
		return geom.Rect{}, errors.New("rtree: empty tree has no MBR")
	}
	return n.MBR(), nil
}

func (t *Tree) writeNode(n *Node) error {
	buf, err := encodeNode(n, t.pool.PageSize(), t.dims)
	if err != nil {
		return err
	}
	return t.pool.Put(n.Page, buf)
}

func (t *Tree) allocNode(n *Node) (pagestore.PageID, error) {
	id, err := t.pool.Store().Allocate()
	if err != nil {
		return pagestore.InvalidPage, err
	}
	n.Page = id
	if err := t.writeNode(n); err != nil {
		return pagestore.InvalidPage, err
	}
	return id, nil
}

func (t *Tree) freeNode(id pagestore.PageID) error {
	t.pool.Invalidate(id)
	return t.pool.Store().Free(id)
}

// Insert adds an item to the tree.
func (t *Tree) Insert(item Item) error {
	if len(item.Point) != t.dims {
		return fmt.Errorf("rtree: point has %d dims, tree has %d", len(item.Point), t.dims)
	}
	// One defensive clone, shared by Min and Max (degenerate rectangle).
	p := item.Point.Clone()
	e := Entry{Rect: geom.Rect{Min: p, Max: p}, ID: item.ID, Child: pagestore.InvalidPage}
	if err := t.insertEntry(e, 1); err != nil {
		return err
	}
	t.size++
	return nil
}

// insertEntry places e at the given level (1 = leaf). Levels above 1 are
// used when reinserting orphaned subtrees during deletion.
func (t *Tree) insertEntry(e Entry, level int) error {
	path, err := t.chooseSubtree(e.Rect, level)
	if err != nil {
		return err
	}
	node := path[len(path)-1].node
	node.Entries = append(node.Entries, e)
	return t.adjustTree(path, node)
}

// pathElem records the traversal from root to the insertion node.
type pathElem struct {
	node     *Node
	entryIdx int // index in node.Entries taken to descend (valid except at last elem)
}

// chooseSubtree descends from the root picking the child needing least
// area enlargement (ties broken by smaller area), stopping at the target
// level.
func (t *Tree) chooseSubtree(r geom.Rect, level int) ([]pathElem, error) {
	path := make([]pathElem, 0, t.height)
	id := t.root
	for depth := t.height; ; depth-- {
		// Every node on the path may be mutated by adjustTree, so take
		// private copies rather than the shared cached nodes.
		n, err := t.readNodeForUpdate(id)
		if err != nil {
			return nil, err
		}
		path = append(path, pathElem{node: n})
		if depth == level {
			return path, nil
		}
		if n.Leaf || len(n.Entries) == 0 {
			return nil, fmt.Errorf("rtree: cannot descend to level %d", level)
		}
		best, bestEnl, bestArea := -1, 0.0, 0.0
		for i, e := range n.Entries {
			enl := e.Rect.EnlargementArea(r)
			area := e.Rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		path[len(path)-1].entryIdx = best
		id = n.Entries[best].Child
	}
}

// adjustTree handles overflow splits at the modified node and propagates
// MBR updates (and possible splits) to the root.
func (t *Tree) adjustTree(path []pathElem, node *Node) error {
	var splitEntry *Entry // entry for the new sibling to add to the parent
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i].node
		if splitEntry != nil {
			n.Entries = append(n.Entries, *splitEntry)
			splitEntry = nil
		}
		capacity := t.maxInternal
		if n.Leaf {
			capacity = t.maxLeaf
		}
		if len(n.Entries) > capacity {
			sibling, err := t.splitNode(n)
			if err != nil {
				return err
			}
			se := Entry{Rect: sibling.MBR(), Child: sibling.Page, ID: 0}
			splitEntry = &se
		}
		if err := t.writeNode(n); err != nil {
			return err
		}
		if i > 0 {
			parent := path[i-1].node
			parent.Entries[path[i-1].entryIdx].Rect = n.MBR()
		}
	}
	if splitEntry != nil {
		// Root split: grow the tree by one level.
		oldRoot := path[0].node
		newRoot := &Node{Leaf: false, Entries: []Entry{
			{Rect: oldRoot.MBR(), Child: oldRoot.Page},
			*splitEntry,
		}}
		id, err := t.allocNode(newRoot)
		if err != nil {
			return err
		}
		t.setRoot(id)
		t.height++
	}
	return nil
}

// splitNode performs Guttman's quadratic split, leaving one group in n and
// returning the freshly allocated sibling (already written).
func (t *Tree) splitNode(n *Node) (*Node, error) {
	entries := n.Entries
	minFill := t.minInternal
	if n.Leaf {
		minFill = t.minLeaf
	}

	// Pick seeds: the pair wasting the most area if grouped together.
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				seedA, seedB, worst = i, j, d
			}
		}
	}
	groupA := []Entry{entries[seedA]}
	groupB := []Entry{entries[seedB]}
	rectA := entries[seedA].Rect.Clone()
	rectB := entries[seedB].Rect.Clone()
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// Force-assign if one group must take all remaining entries to
		// reach minimum fill.
		if len(groupA)+len(rest) == minFill {
			for _, e := range rest {
				groupA = append(groupA, e)
				rectA.Enlarge(e.Rect)
			}
			break
		}
		if len(groupB)+len(rest) == minFill {
			for _, e := range rest {
				groupB = append(groupB, e)
				rectB.Enlarge(e.Rect)
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		bestIdx, bestDiff := -1, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := rectA.EnlargementArea(e.Rect)
			dB := rectB.EnlargementArea(e.Rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
				bestToA = dA < dB ||
					(dA == dB && rectA.Area() < rectB.Area()) ||
					(dA == dB && rectA.Area() == rectB.Area() && len(groupA) <= len(groupB))
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestToA {
			groupA = append(groupA, e)
			rectA.Enlarge(e.Rect)
		} else {
			groupB = append(groupB, e)
			rectB.Enlarge(e.Rect)
		}
	}

	n.Entries = groupA
	sibling := &Node{Leaf: n.Leaf, Entries: groupB}
	if _, err := t.allocNode(sibling); err != nil {
		return nil, err
	}
	return sibling, nil
}
