package rtree

import (
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// benchTree bulk-loads n random points into a tree whose pool holds the
// whole index (warm-cache regime) and returns it with the counters reset.
func benchTree(b *testing.B, n, dims int, cache bool) *Tree {
	b.Helper()
	store := pagestore.NewMemStore(4096)
	pool := pagestore.NewBufferPool(store, 1<<20)
	pool.SetDecodedCache(cache)
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		items[i] = Item{ID: uint64(i), Point: p}
	}
	tr, err := BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	store.IO().Reset()
	return tr
}

// BenchmarkReadNodeWarm measures one warm node access — the single
// hottest operation of every traversal. With the decoded-node cache it is
// a pure map/LRU hit and must not allocate.
func BenchmarkReadNodeWarm(b *testing.B) {
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			tr := benchTree(b, 5000, 3, cache)
			root := tr.Root()
			if _, err := tr.ReadNode(root); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.ReadNode(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNN measures a warm 10-NN search over 5k points.
func BenchmarkKNN(b *testing.B) {
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			tr := benchTree(b, 5000, 3, cache)
			rng := rand.New(rand.NewSource(7))
			queries := make([]geom.Point, 64)
			for i := range queries {
				queries[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tr.NearestNeighbors(queries[i%len(queries)], 10, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
