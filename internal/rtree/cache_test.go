package rtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// verifyNoStaleNodes walks every live page and checks that the node
// served by the (possibly cached) ReadNode path is identical to a fresh
// decode of the current page bytes.
func verifyNoStaleNodes(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(id pagestore.PageID)
	walk = func(id pagestore.PageID) {
		cached, err := tr.ReadNode(id)
		if err != nil {
			t.Fatalf("ReadNode(%d): %v", id, err)
		}
		buf, err := tr.pool.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		fresh, err := decodeNode(id, buf, tr.dims)
		if err != nil {
			t.Fatalf("decodeNode(%d): %v", id, err)
		}
		if cached.Leaf != fresh.Leaf || len(cached.Entries) != len(fresh.Entries) {
			t.Fatalf("page %d stale: cached leaf=%v n=%d, fresh leaf=%v n=%d",
				id, cached.Leaf, len(cached.Entries), fresh.Leaf, len(fresh.Entries))
		}
		for i := range cached.Entries {
			c, f := cached.Entries[i], fresh.Entries[i]
			if c.ID != f.ID || c.Child != f.Child ||
				!c.Rect.Min.Equal(f.Rect.Min) || !c.Rect.Max.Equal(f.Rect.Max) {
				t.Fatalf("page %d entry %d stale: cached %+v, fresh %+v", id, i, c, f)
			}
		}
		if !cached.Leaf {
			for _, e := range cached.Entries {
				walk(e.Child)
			}
		}
	}
	walk(tr.root)
}

// TestNodeCacheNeverStale interleaves inserts, deletes, and warm reads
// (including under heavy eviction pressure from a tiny pool) and asserts
// the decoded-node cache always reflects current page bytes.
func TestNodeCacheNeverStale(t *testing.T) {
	for _, capacity := range []int{0, 2, 1 << 20} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			store := pagestore.NewMemStore(512)
			pool := pagestore.NewBufferPool(store, capacity)
			tr, err := New(pool, 2)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			var live []Item
			for step := 0; step < 400; step++ {
				switch {
				case len(live) == 0 || rng.Float64() < 0.7:
					it := Item{ID: uint64(step), Point: geom.Point{rng.Float64(), rng.Float64()}}
					if err := tr.Insert(it); err != nil {
						t.Fatalf("insert %d: %v", step, err)
					}
					live = append(live, it)
				default:
					i := rng.Intn(len(live))
					if err := tr.Delete(live[i]); err != nil {
						t.Fatalf("delete: %v", err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				// Warm the cache with a few traversals between mutations.
				if _, _, err := tr.NearestNeighbors(geom.Point{rng.Float64(), rng.Float64()}, 3, nil); err != nil {
					t.Fatal(err)
				}
				if step%40 == 0 {
					verifyNoStaleNodes(t, tr)
					if err := tr.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				}
			}
			verifyNoStaleNodes(t, tr)
		})
	}
}

// TestSharedNodesConcurrentReaders hammers one tree from many goroutines
// doing ReadNode walks, kNN, and window searches. The decoded nodes are
// shared across all of them; run with -race this verifies the cache layer
// and the immutability contract (no reader ever writes a node).
func TestSharedNodesConcurrentReaders(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 8) // small: constant eviction traffic
	items := make([]Item, 500)
	rng := rand.New(rand.NewSource(5))
	for i := range items {
		items[i] = Item{ID: uint64(i), Point: geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	tr, err := BulkLoad(pool, 3, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := geom.Point{r.Float64(), r.Float64(), r.Float64()}
				if _, _, err := tr.NearestNeighbors(q, 5, nil); err != nil {
					t.Error(err)
					return
				}
				rect := geom.Rect{Min: geom.Point{0, 0, 0}, Max: q}
				if err := tr.Search(rect, func(Item) bool { return true }); err != nil {
					t.Error(err)
					return
				}
				if _, err := tr.ReadNode(tr.Root()); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestLeafEntriesShareBacking pins the satellite fix: a decoded leaf
// entry's Min and Max must alias the same storage (degenerate rectangle),
// not a point plus its clone.
func TestLeafEntriesShareBacking(t *testing.T) {
	n := &Node{Leaf: true, Entries: []Entry{
		{Rect: geom.RectFromPoint(geom.Point{1, 2}), ID: 1, Child: pagestore.InvalidPage},
	}}
	buf, err := encodeNode(n, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeNode(0, buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := dec.Entries[0]
	if &e.Rect.Min[0] != &e.Rect.Max[0] {
		t.Fatal("leaf entry Min and Max do not share a backing slice")
	}
	if !e.Rect.Min.Equal(geom.Point{1, 2}) {
		t.Fatalf("decoded point %v, want (1,2)", e.Rect.Min)
	}
}

// TestReadNodeWarmZeroAlloc asserts the headline property of the decoded
// cache: a warm node read performs no allocation at all.
func TestReadNodeWarmZeroAlloc(t *testing.T) {
	store := pagestore.NewMemStore(4096)
	pool := pagestore.NewBufferPool(store, 64)
	items := make([]Item, 300)
	rng := rand.New(rand.NewSource(3))
	for i := range items {
		items[i] = Item{ID: uint64(i), Point: geom.Point{rng.Float64(), rng.Float64()}}
	}
	tr, err := BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if _, err := tr.ReadNode(root); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tr.ReadNode(root); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ReadNode allocates %.1f per op, want 0", allocs)
	}
}
