// Package rtree implements a disk-resident R-tree over the pagestore
// layer. One tree node occupies exactly one page; all node reads and
// writes go through an LRU buffer pool so that experiments observe the
// same I/O behaviour the paper measures. The tree supports Guttman
// quadratic-split insertion, deletion with tree condensation, STR bulk
// loading, window search, and raw node access for the best-first
// traversals used by the skyline and ranked-search packages.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// Entry is one slot of a node. In internal nodes Child points to the child
// page and Rect is the child's MBR. In leaves Rect is the degenerate
// rectangle of the object's point and ID is the object identifier.
type Entry struct {
	Rect  geom.Rect
	Child pagestore.PageID // internal nodes only
	ID    uint64           // leaf nodes only
}

// Item is a data object stored in the tree: an identifier plus its
// D-dimensional feature vector.
type Item struct {
	ID    uint64
	Point geom.Point
}

// Node is the decoded form of one tree page. Nodes returned by
// Tree.ReadNode are shared via the buffer pool's decoded-node cache and
// must be treated as immutable; update paths obtain private copies
// through readNodeForUpdate.
type Node struct {
	Page    pagestore.PageID
	Leaf    bool
	Entries []Entry
}

// MBR returns the minimum bounding rectangle of all entries in the node.
func (n *Node) MBR() geom.Rect {
	if len(n.Entries) == 0 {
		return geom.Rect{}
	}
	r := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		r.Enlarge(e.Rect)
	}
	return r
}

// Node page layout (little endian):
//
//	offset 0: flags   uint8 (bit 0: leaf)
//	offset 1: count   uint16
//	offset 3: entries count × entrySize
//
// Internal entry: min[D]float64, max[D]float64, child int64.
// Leaf entry:     point[D]float64, id uint64.
const nodeHeaderSize = 3

func internalEntrySize(dims int) int { return 2*8*dims + 8 }
func leafEntrySize(dims int) int     { return 8*dims + 8 }

// internalCapacity returns the max entries an internal node page can hold.
func internalCapacity(pageSize, dims int) int {
	return (pageSize - nodeHeaderSize) / internalEntrySize(dims)
}

// leafCapacity returns the max entries a leaf node page can hold.
func leafCapacity(pageSize, dims int) int {
	return (pageSize - nodeHeaderSize) / leafEntrySize(dims)
}

func putFloat(buf []byte, v float64) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
}

func getFloat(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// encodeNode serializes n into a page image of the given size.
func encodeNode(n *Node, pageSize, dims int) ([]byte, error) {
	var cap, esz int
	if n.Leaf {
		cap, esz = leafCapacity(pageSize, dims), leafEntrySize(dims)
	} else {
		cap, esz = internalCapacity(pageSize, dims), internalEntrySize(dims)
	}
	if len(n.Entries) > cap {
		return nil, fmt.Errorf("rtree: node overflow: %d entries, capacity %d", len(n.Entries), cap)
	}
	buf := make([]byte, pageSize)
	if n.Leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.Entries)))
	off := nodeHeaderSize
	for _, e := range n.Entries {
		if n.Leaf {
			for d := 0; d < dims; d++ {
				putFloat(buf[off+8*d:], e.Rect.Min[d])
			}
			binary.LittleEndian.PutUint64(buf[off+8*dims:], e.ID)
		} else {
			for d := 0; d < dims; d++ {
				putFloat(buf[off+8*d:], e.Rect.Min[d])
				putFloat(buf[off+8*(dims+d):], e.Rect.Max[d])
			}
			binary.LittleEndian.PutUint64(buf[off+16*dims:], uint64(e.Child))
		}
		off += esz
	}
	return buf, nil
}

// decodeNode parses a page image into a Node. All entry coordinates share
// one contiguous backing array (one allocation per node instead of one to
// two per entry); leaf entries are degenerate rectangles, so their Min and
// Max alias the same D floats. Decoded nodes are treated as immutable
// everywhere — mutation paths work on copies (see readNodeForUpdate) and
// replace whole Rect values rather than writing through Min/Max — so the
// sharing is safe, and so is caching the node across traversals.
func decodeNode(page pagestore.PageID, buf []byte, dims int) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rtree: page %d too small to decode", page)
	}
	n := &Node{Page: page, Leaf: buf[0]&1 == 1}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	var esz, perEntry int
	if n.Leaf {
		esz, perEntry = leafEntrySize(dims), dims
	} else {
		esz, perEntry = internalEntrySize(dims), 2*dims
	}
	if nodeHeaderSize+count*esz > len(buf) {
		return nil, fmt.Errorf("rtree: page %d corrupt: count %d exceeds page", page, count)
	}
	n.Entries = make([]Entry, count)
	coords := make([]float64, count*perEntry)
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		var e Entry
		base := i * perEntry
		if n.Leaf {
			p := geom.Point(coords[base : base+dims : base+dims])
			for d := 0; d < dims; d++ {
				p[d] = getFloat(buf[off+8*d:])
			}
			e.Rect = geom.Rect{Min: p, Max: p}
			e.ID = binary.LittleEndian.Uint64(buf[off+8*dims:])
			e.Child = pagestore.InvalidPage
		} else {
			min := geom.Point(coords[base : base+dims : base+dims])
			max := geom.Point(coords[base+dims : base+2*dims : base+2*dims])
			for d := 0; d < dims; d++ {
				min[d] = getFloat(buf[off+8*d:])
				max[d] = getFloat(buf[off+8*(dims+d):])
			}
			e.Rect = geom.Rect{Min: min, Max: max}
			e.Child = pagestore.PageID(binary.LittleEndian.Uint64(buf[off+16*dims:]))
		}
		n.Entries[i] = e
		off += esz
	}
	return n, nil
}
