package rtree

import (
	"bytes"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

func bulkItems(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			// Coarse grid: lots of equal STR centers, exercising the
			// total-order tie-breaks the parallel sort depends on.
			p[d] = float64(rng.Intn(32)) / 31
		}
		items[i] = Item{ID: uint64(i + 1), Point: p}
	}
	return items
}

// storePages flushes the pool and dumps every allocated page's bytes by
// ID. Missing IDs (the freed initial root) are recorded as nil so the
// comparison covers allocation order, not just content.
func storePages(t *testing.T, pool *pagestore.BufferPool, store *pagestore.MemStore) [][]byte {
	t.Helper()
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	pages := make([][]byte, store.NumPages()+8)
	buf := make([]byte, store.PageSize())
	for i := range pages {
		if err := store.ReadPage(pagestore.PageID(i), buf); err != nil {
			continue // freed or never-allocated ID stays nil
		}
		pages[i] = append([]byte(nil), buf...)
	}
	return pages
}

// TestBulkLoadParallelByteIdentical: the parallel STR build must leave
// the page store byte-identical to the sequential build — same page
// allocation order, same page images — across fill factors, worker
// counts, sizes, and dimensionalities, with tie-heavy coordinates.
func TestBulkLoadParallelByteIdentical(t *testing.T) {
	const pageSize, poolPages = 512, 1 << 16
	for _, dims := range []int{2, 4} {
		for _, n := range []int{100, 5000, 20000} {
			items := bulkItems(rand.New(rand.NewSource(int64(31*n+dims))), n, dims)
			var want [][]byte
			var wantReads, wantWrites int64
			for _, fill := range []float64{0.5, 0.7, 0.9, 1.0} {
				for _, workers := range []int{1, 2, 3, 4, 8} {
					store := pagestore.NewMemStore(pageSize)
					pool := pagestore.NewBufferPool(store, poolPages)
					tree, err := BulkLoadWorkers(pool, dims, items, fill, workers)
					if err != nil {
						t.Fatalf("dims=%d n=%d fill=%v workers=%d: %v", dims, n, fill, workers, err)
					}
					if tree.Len() != n {
						t.Fatalf("dims=%d n=%d fill=%v workers=%d: Len=%d", dims, n, fill, workers, tree.Len())
					}
					io := store.IO().Snapshot() // before the probe reads below
					reads, writes := io.PhysicalReads, io.PhysicalWrites
					pages := storePages(t, pool, store)
					if workers == 1 {
						want, wantReads, wantWrites = pages, reads, writes
						continue
					}
					if len(pages) != len(want) {
						t.Fatalf("dims=%d n=%d fill=%v workers=%d: %d pages, sequential %d",
							dims, n, fill, workers, len(pages), len(want))
					}
					for p := range pages {
						if !bytes.Equal(pages[p], want[p]) {
							t.Fatalf("dims=%d n=%d fill=%v workers=%d: page %d differs from sequential build",
								dims, n, fill, workers, p)
						}
					}
					if reads != wantReads || writes != wantWrites {
						t.Fatalf("dims=%d n=%d fill=%v workers=%d: io=(%d,%d), sequential (%d,%d)",
							dims, n, fill, workers, reads, writes, wantReads, wantWrites)
					}
				}
			}
		}
	}
}

// TestBulkLoadParallelSmallPool: with a tiny buffer pool the build
// evicts constantly; eviction-driven physical writes must still be
// identical at every worker count (the Put sequence is the same).
func TestBulkLoadParallelSmallPool(t *testing.T) {
	const pageSize = 512
	items := bulkItems(rand.New(rand.NewSource(7)), 8000, 3)
	var want [][]byte
	var wantWrites int64
	for _, workers := range []int{1, 4} {
		store := pagestore.NewMemStore(pageSize)
		pool := pagestore.NewBufferPool(store, 8)
		if _, err := BulkLoadWorkers(pool, 3, items, 0.9, workers); err != nil {
			t.Fatal(err)
		}
		writes := store.IO().Snapshot().PhysicalWrites
		pages := storePages(t, pool, store)
		if workers == 1 {
			want, wantWrites = pages, writes
			continue
		}
		if len(pages) != len(want) {
			t.Fatalf("workers=4: %d pages, sequential %d", len(pages), len(want))
		}
		for p := range pages {
			if !bytes.Equal(pages[p], want[p]) {
				t.Fatalf("workers=4: page %d differs under eviction pressure", p)
			}
		}
		if writes != wantWrites {
			t.Fatalf("workers=4: physical writes %d, sequential %d", writes, wantWrites)
		}
	}
}

// TestBulkLoadParallelQueries: sanity that a parallel-built tree answers
// the same queries as a sequential one.
func TestBulkLoadParallelQueries(t *testing.T) {
	items := bulkItems(rand.New(rand.NewSource(3)), 3000, 2)
	trees := make([]*Tree, 0, 2)
	for _, workers := range []int{1, 6} {
		store := pagestore.NewMemStore(512)
		pool := pagestore.NewBufferPool(store, 1<<14)
		tr, err := BulkLoadWorkers(pool, 2, items, 0.9, workers)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	for _, tr := range trees {
		count := 0
		if err := tr.All(func(Item) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != len(items) {
			t.Fatalf("All() visited %d items, want %d", count, len(items))
		}
	}
}

// BenchmarkBulkLoadParallel measures the cold STR build at n=10⁵ and
// n=10⁶ for worker counts 1 (sequential baseline) and all-cores. On
// multi-core hardware the spread is the tentpole speedup; on one core
// the two must track each other (the parallel path's overhead is the
// regression guard).
func BenchmarkBulkLoadParallel(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		items := bulkItems(rand.New(rand.NewSource(int64(n))), n, 2)
		for _, workers := range []int{1, 0} {
			name := "seq"
			if workers == 0 {
				name = "allcores"
			}
			b.Run(benchSize(n)+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					store := pagestore.NewMemStore(4096)
					pool := pagestore.NewBufferPool(store, 1<<18)
					if _, err := BulkLoadWorkers(pool, 2, items, 0.9, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchSize(n int) string {
	if n == 100_000 {
		return "n1e5"
	}
	return "n1e6"
}
