package rtree

import (
	"fmt"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// NodeReader is the read substrate a tree traversal runs against. Both
// the live *Tree (reading through its buffer pool) and the frozen *View
// (reading a pagestore.Snapshot) implement it, so every read-only
// search — window search, kNN, BRS ranked search, BBS skyline — can run
// unchanged over either the writer's current state or a pinned epoch.
type NodeReader interface {
	// Dims returns the dimensionality of indexed points.
	Dims() int
	// Len returns the number of stored items.
	Len() int
	// Root returns the root page ID.
	Root() pagestore.PageID
	// ReadNode fetches one node. The returned node is shared and
	// immutable.
	ReadNode(id pagestore.PageID) (*Node, error)
}

// Meta is the mutable header of a tree — root pointer, height, size —
// captured at one instant. Together with a pagestore.Snapshot of the
// pages it freezes the whole index: the pages pin the node contents,
// the Meta pins the entry point.
type Meta struct {
	Root   pagestore.PageID
	Height int // 1 = root is a leaf
	Size   int // number of stored items
}

// Meta returns the tree's current header. Capture it at the same
// serialization point as the page snapshot (e.g. under the single
// writer's lock) or the view's root may dangle.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Size: t.size} }

// FromMeta reattaches a live tree to pages that already exist in the
// pool's store — the restore half of snapshot serialization: the page
// images carry the node contents, the Meta carries the entry point, and
// together they reproduce the exact tree that was saved, no bulk load
// and no re-solve. The caller is responsible for the pages being a
// consistent image captured with this Meta (the snapshot layer's
// checksums enforce that).
func FromMeta(pool *pagestore.BufferPool, dims int, meta Meta) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: invalid dimensionality %d", dims)
	}
	if meta.Root == pagestore.InvalidPage || meta.Height < 1 || meta.Size < 0 {
		return nil, fmt.Errorf("rtree: invalid meta %+v", meta)
	}
	t := &Tree{pool: pool, dims: dims, root: pagestore.InvalidPage}
	t.decode = func(id pagestore.PageID, data []byte) (any, error) {
		return decodeNode(id, data, t.dims)
	}
	t.maxLeaf = leafCapacity(pool.PageSize(), dims)
	t.maxInternal = internalCapacity(pool.PageSize(), dims)
	if t.maxLeaf < 2 || t.maxInternal < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d dims", pool.PageSize(), dims)
	}
	t.minLeaf = max(1, int(minFillRatio*float64(t.maxLeaf)))
	t.minInternal = max(1, int(minFillRatio*float64(t.maxInternal)))
	t.setRoot(meta.Root)
	t.height = meta.Height
	t.size = meta.Size
	return t, nil
}

// View is a read-only R-tree frozen at one pagestore epoch: node reads
// resolve page versions through the snapshot (with the per-version
// decoded-node cache), so searches observe exactly the tree as it was
// when the snapshot was taken, no matter how the live tree mutates
// afterwards. A View performs no writer I/O and holds no locks between
// node reads; it is safe for concurrent use by any number of
// goroutines and stays valid until the snapshot is released.
type View struct {
	snap   *pagestore.Snapshot
	dims   int
	meta   Meta
	decode func(pagestore.PageID, []byte) (any, error)
}

// NewView freezes a tree of the given dimensionality at the snapshot's
// epoch. meta must have been captured at the moment the snapshot was
// acquired.
func NewView(snap *pagestore.Snapshot, dims int, meta Meta) *View {
	v := &View{snap: snap, dims: dims, meta: meta}
	v.decode = func(id pagestore.PageID, data []byte) (any, error) {
		return decodeNode(id, data, dims)
	}
	return v
}

// Dims implements NodeReader.
func (v *View) Dims() int { return v.dims }

// Len implements NodeReader.
func (v *View) Len() int { return v.meta.Size }

// Height returns the frozen tree height.
func (v *View) Height() int { return v.meta.Height }

// Root implements NodeReader.
func (v *View) Root() pagestore.PageID { return v.meta.Root }

// ReadNode implements NodeReader: the node as of the view's epoch,
// decoded at most once per retained page version.
func (v *View) ReadNode(id pagestore.PageID) (*Node, error) {
	obj, err := v.snap.GetDecoded(id, v.decode)
	if err != nil {
		return nil, err
	}
	return obj.(*Node), nil
}

// Search visits every frozen item inside rect (see Tree.Search).
func (v *View) Search(rect geom.Rect, fn func(Item) bool) error {
	if v.meta.Size == 0 {
		return nil
	}
	_, err := searchReader(v, v.meta.Root, rect, fn)
	return err
}

// All visits every frozen item. Returning false stops.
func (v *View) All(fn func(Item) bool) error { return allItems(v, fn) }

// Items returns every frozen item as a slice.
func (v *View) Items() ([]Item, error) { return readerItems(v, v.meta.Size) }

// NearestNeighbors returns the k frozen items closest to q (see
// Tree.NearestNeighbors).
func (v *View) NearestNeighbors(q geom.Point, k int, skip func(uint64) bool) ([]Item, []float64, error) {
	return nearestNeighbors(v, q, k, skip)
}
