package rtree

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

func newTestTree(t *testing.T, dims, pageSize, bufferPages int) *Tree {
	t.Helper()
	store := pagestore.NewMemStore(pageSize)
	pool := pagestore.NewBufferPool(store, bufferPages)
	tr, err := New(pool, dims)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randItems(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		items[i] = Item{ID: uint64(i + 1), Point: p}
	}
	return items
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
}

func TestNodeCodecRoundTrip(t *testing.T) {
	for _, leaf := range []bool{true, false} {
		n := &Node{Page: 7, Leaf: leaf}
		for i := 0; i < 5; i++ {
			e := Entry{
				Rect: geom.Rect{
					Min: geom.Point{float64(i), float64(i) * 0.5, 0.1},
					Max: geom.Point{float64(i) + 1, float64(i)*0.5 + 1, 0.9},
				},
				Child: pagestore.PageID(100 + i),
				ID:    uint64(200 + i),
			}
			if leaf {
				e.Rect.Max = e.Rect.Min.Clone() // leaves store points
				e.Child = pagestore.InvalidPage
			}
			n.Entries = append(n.Entries, e)
		}
		buf, err := encodeNode(n, 4096, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeNode(7, buf, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Leaf != leaf || len(got.Entries) != 5 {
			t.Fatalf("decode mismatch: leaf=%v entries=%d", got.Leaf, len(got.Entries))
		}
		for i, e := range got.Entries {
			if !e.Rect.Min.Equal(n.Entries[i].Rect.Min) {
				t.Fatalf("entry %d min mismatch", i)
			}
			if leaf {
				if e.ID != n.Entries[i].ID {
					t.Fatalf("entry %d id mismatch", i)
				}
			} else if e.Child != n.Entries[i].Child {
				t.Fatalf("entry %d child mismatch", i)
			}
		}
	}
}

func TestNodeCodecOverflowRejected(t *testing.T) {
	n := &Node{Leaf: true}
	for i := 0; i < 1000; i++ {
		p := geom.Point{0.5, 0.5}
		n.Entries = append(n.Entries, Entry{Rect: geom.RectFromPoint(p), ID: uint64(i)})
	}
	if _, err := encodeNode(n, 512, 2); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := newTestTree(t, 2, 4096, 64)
	pts := []geom.Point{{0.5, 0.6}, {0.2, 0.7}, {0.8, 0.2}, {0.4, 0.4}}
	for i, p := range pts {
		if err := tr.Insert(Item{ID: uint64(i + 1), Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	var found []uint64
	err := tr.Search(geom.Rect{Min: geom.Point{0.3, 0.3}, Max: geom.Point{0.9, 0.7}}, func(it Item) bool {
		found = append(found, it.ID)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
	want := []uint64{1, 4} // a=(0.5,0.6), d=(0.4,0.4)
	if len(found) != len(want) || found[0] != want[0] || found[1] != want[1] {
		t.Fatalf("search = %v, want %v", found, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManyForcesSplitsAndStaysValid(t *testing.T) {
	// Small page size to force deep trees and many splits.
	tr := newTestTree(t, 2, 256, 256)
	rng := rand.New(rand.NewSource(42))
	items := randItems(rng, 500, 2)
	for i, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree, height = %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Items()
	if err != nil {
		t.Fatal(err)
	}
	sortItems(got)
	if len(got) != len(items) {
		t.Fatalf("Items = %d, want %d", len(got), len(items))
	}
	for i := range got {
		if got[i].ID != items[i].ID || !got[i].Point.Equal(items[i].Point) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range []int{2, 3, 5} {
		tr := newTestTree(t, dims, 512, 256)
		items := randItems(rng, 300, dims)
		for _, it := range items {
			if err := tr.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 50; q++ {
			min := make(geom.Point, dims)
			max := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				min[d], max[d] = a, b
			}
			rect := geom.Rect{Min: min, Max: max}
			want := map[uint64]bool{}
			for _, it := range items {
				if rect.Contains(it.Point) {
					want[it.ID] = true
				}
			}
			got := map[uint64]bool{}
			if err := tr.Search(rect, func(it Item) bool { got[it.ID] = true; return true }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("dims=%d query %d: got %d matches, want %d", dims, q, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("dims=%d query %d: missing id %d", dims, q, id)
				}
			}
		}
	}
}

func TestDeleteAllOneByOne(t *testing.T) {
	tr := newTestTree(t, 2, 256, 256)
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 300, 2)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		if err := tr.Delete(items[pi]); err != nil {
			t.Fatalf("delete %d (id %d): %v", i, items[pi].ID, err)
		}
		if i%61 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting everything, want 1", tr.Height())
	}
}

func TestDeleteMissingReturnsErrNotFound(t *testing.T) {
	tr := newTestTree(t, 2, 4096, 16)
	if err := tr.Insert(Item{ID: 1, Point: geom.Point{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	err := tr.Delete(Item{ID: 2, Point: geom.Point{0.5, 0.5}})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// Same ID, different point: also not found.
	err = tr.Delete(Item{ID: 1, Point: geom.Point{0.1, 0.1}})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMixedInsertDeleteWorkload(t *testing.T) {
	tr := newTestTree(t, 3, 512, 256)
	rng := rand.New(rand.NewSource(11))
	live := map[uint64]geom.Point{}
	nextID := uint64(1)
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
			if err := tr.Insert(Item{ID: nextID, Point: p}); err != nil {
				t.Fatal(err)
			}
			live[nextID] = p
			nextID++
		} else {
			var id uint64
			for id = range live {
				break
			}
			if err := tr.Delete(Item{ID: id, Point: live[id]}); err != nil {
				t.Fatalf("step %d: delete id %d: %v", step, id, err)
			}
			delete(live, id)
		}
		if step%211 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	got, err := tr.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(live) {
		t.Fatalf("Items = %d, want %d", len(got), len(live))
	}
	for _, it := range got {
		p, ok := live[it.ID]
		if !ok || !p.Equal(it.Point) {
			t.Fatalf("unexpected item %d %v", it.ID, it.Point)
		}
	}
}

func TestBulkLoadMatchesInserted(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 10, 500, 3000} {
		items := randItems(rng, n, 3)
		store := pagestore.NewMemStore(512)
		pool := pagestore.NewBufferPool(store, 1024)
		tr, err := BulkLoad(pool, 3, items, 0.9)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if n == 0 {
			continue
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := tr.Items()
		if err != nil {
			t.Fatal(err)
		}
		sortItems(got)
		if len(got) != n {
			t.Fatalf("n=%d: Items = %d", n, len(got))
		}
		for i := range got {
			if got[i].ID != items[i].ID {
				t.Fatalf("n=%d: item %d id mismatch", n, i)
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items := randItems(rng, 800, 2)
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1024)
	tr, err := BulkLoad(pool, 2, items, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Delete a third, insert some new.
	for i := 0; i < 250; i++ {
		if err := tr.Delete(items[i]); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := tr.Insert(Item{ID: uint64(10000 + i), Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 800-250+100 {
		t.Fatalf("Len = %d, want %d", tr.Len(), 800-250+100)
	}
}

func TestDuplicatePointsDistinctIDs(t *testing.T) {
	tr := newTestTree(t, 2, 256, 64)
	p := geom.Point{0.5, 0.5}
	for i := 1; i <= 60; i++ {
		if err := tr.Insert(Item{ID: uint64(i), Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(Item{ID: 30, Point: p}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 59 {
		t.Fatalf("Items = %d, want 59", len(got))
	}
	for _, it := range got {
		if it.ID == 30 {
			t.Fatal("deleted ID still present")
		}
	}
}

func TestInsertWrongDims(t *testing.T) {
	tr := newTestTree(t, 3, 4096, 4)
	if err := tr.Insert(Item{ID: 1, Point: geom.Point{0.5, 0.5}}); err == nil {
		t.Fatal("expected dimensionality error")
	}
}

func TestIOCountingThroughBuffer(t *testing.T) {
	// A search on a cold buffer must incur physical reads; repeating it
	// with a large, warm buffer must incur none.
	rng := rand.New(rand.NewSource(17))
	items := randItems(rng, 2000, 2)
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 4096)
	tr, err := BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	query := geom.Rect{Min: geom.Point{0.2, 0.2}, Max: geom.Point{0.6, 0.6}}

	// Bulk load warmed the pool; drop the cache to simulate a cold start.
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	store.IO().Reset()
	if err := tr.Search(query, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	cold := store.IO().PhysicalReads
	if cold == 0 {
		t.Fatal("cold search should read pages")
	}
	store.IO().Reset()
	if err := tr.Search(query, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if warm := store.IO().PhysicalReads; warm != 0 {
		t.Fatalf("warm search incurred %d physical reads", warm)
	}
	if store.IO().LogicalReads == 0 {
		t.Fatal("warm search should still record logical reads")
	}
}

func TestTreeOnFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	store, err := pagestore.NewFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pool := pagestore.NewBufferPool(store, 64)
	tr, err := New(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	items := randItems(rng, 200, 2)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("Items = %d, want 200", len(got))
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	store := pagestore.NewMemStore(4096)
	pool := pagestore.NewBufferPool(store, 4096)
	rng := rand.New(rand.NewSource(61))
	items := randItems(rng, 20000, 4)
	tr, err := BulkLoad(pool, 4, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() > 4 {
		t.Fatalf("height %d too large for 20k items at 4 KB pages", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
