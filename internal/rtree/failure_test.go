package rtree

import (
	"errors"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
)

// flakyStore injects a read failure after a countdown, exercising error
// propagation through every tree operation.
type flakyStore struct {
	pagestore.Store
	failAfter int
	err       error
}

var errInjected = errors.New("injected disk failure")

func (f *flakyStore) ReadPage(id pagestore.PageID, buf []byte) error {
	if f.failAfter <= 0 {
		return errInjected
	}
	f.failAfter--
	return f.Store.ReadPage(id, buf)
}

func (f *flakyStore) IO() *metrics.IOCounter { return f.Store.IO() }

func TestReadFailurePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 500, 2)

	// Build on a healthy store first.
	healthy := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(healthy, 1<<20)
	tr, err := BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}

	// Persist the tree, then rewire traversal through a failing wrapper
	// with an empty cache.
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyStore{Store: healthy, failAfter: 3}
	tr.pool = pagestore.NewBufferPool(flaky, 0)

	q := geom.Rect{Min: geom.Point{0, 0}, Max: geom.Point{1, 1}}
	err = tr.Search(q, func(Item) bool { return true })
	if !errors.Is(err, errInjected) {
		t.Fatalf("Search should surface the injected failure, got %v", err)
	}

	err = tr.Insert(Item{ID: 9999, Point: geom.Point{0.5, 0.5}})
	if !errors.Is(err, errInjected) {
		t.Fatalf("Insert should surface the injected failure, got %v", err)
	}

	err = tr.Delete(items[0])
	if !errors.Is(err, errInjected) {
		t.Fatalf("Delete should surface the injected failure, got %v", err)
	}

	if err := tr.CheckInvariants(); !errors.Is(err, errInjected) {
		t.Fatalf("CheckInvariants should surface the injected failure, got %v", err)
	}
}

func TestDecodeCorruptPage(t *testing.T) {
	// A page whose entry count exceeds what fits must be rejected, not
	// sliced out of bounds.
	buf := make([]byte, 64)
	buf[0] = 1 // leaf
	buf[1] = 0xff
	buf[2] = 0xff // count = 65535
	if _, err := decodeNode(1, buf, 2); err == nil {
		t.Fatal("decoding a corrupt page should fail")
	}
	if _, err := decodeNode(1, []byte{1}, 2); err == nil {
		t.Fatal("decoding a truncated page should fail")
	}
}
