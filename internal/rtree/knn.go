package rtree

import (
	"math"
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/heaputil"
	"fairassign/internal/pagestore"
)

// Nearest-neighbor search. Not used by the assignment algorithms (they
// rank by linear score, not distance — see topk), but the original Chain
// algorithm operates on spatial NN queries, and a general R-tree library
// is expected to provide k-NN. Implemented as classic best-first search
// on squared Euclidean distance.

type nnEntry struct {
	child pagestore.PageID
	id    uint64
	point geom.Point
	dist  float64
}

func (e nnEntry) isPoint() bool { return e.child == pagestore.InvalidPage }

// nnHeap is a boxing-free min-heap on (dist, point-first, id).
type nnHeap []nnEntry

func lessNN(a, b nnEntry) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.isPoint() != b.isPoint() {
		return a.isPoint()
	}
	return a.id < b.id
}

// minDistSq returns the squared Euclidean distance from q to the nearest
// point of r (zero when q is inside r).
func minDistSq(q geom.Point, r geom.Rect) float64 {
	d := 0.0
	for i := range q {
		switch {
		case q[i] < r.Min[i]:
			v := r.Min[i] - q[i]
			d += v * v
		case q[i] > r.Max[i]:
			v := q[i] - r.Max[i]
			d += v * v
		}
	}
	return d
}

func distSq(a, b geom.Point) float64 {
	d := 0.0
	for i := range a {
		v := a[i] - b[i]
		d += v * v
	}
	return d
}

// nnHeapPool recycles search heaps across NearestNeighbors calls; heaps
// are scrubbed before being returned so no node memory is retained.
var nnHeapPool = sync.Pool{New: func() any { return new(nnHeap) }}

// NearestNeighbors returns the k stored items closest to q in Euclidean
// distance, nearest first. Items for which skip returns true are passed
// over.
func (t *Tree) NearestNeighbors(q geom.Point, k int, skip func(uint64) bool) ([]Item, []float64, error) {
	return nearestNeighbors(t, q, k, skip)
}

// nearestNeighbors is the best-first kNN over any read substrate (live
// tree or frozen view).
func nearestNeighbors(r NodeReader, q geom.Point, k int, skip func(uint64) bool) ([]Item, []float64, error) {
	if k <= 0 || r.Len() == 0 {
		return nil, nil, nil
	}
	h := nnHeapPool.Get().(*nnHeap)
	defer func() {
		clear((*h)[:cap(*h)])
		*h = (*h)[:0]
		nnHeapPool.Put(h)
	}()
	root, err := r.ReadNode(r.Root())
	if err != nil {
		return nil, nil, err
	}
	pushNN(h, root, q)
	var items []Item
	var dists []float64
	for len(*h) > 0 && len(items) < k {
		e := heaputil.Pop((*[]nnEntry)(h), lessNN)
		if e.isPoint() {
			if skip != nil && skip(e.id) {
				continue
			}
			items = append(items, Item{ID: e.id, Point: e.point})
			dists = append(dists, math.Sqrt(e.dist))
			continue
		}
		n, err := r.ReadNode(e.child)
		if err != nil {
			return nil, nil, err
		}
		pushNN(h, n, q)
	}
	return items, dists, nil
}

// NearestNeighbor returns the closest stored item to q.
func (t *Tree) NearestNeighbor(q geom.Point, skip func(uint64) bool) (Item, float64, bool, error) {
	items, dists, err := t.NearestNeighbors(q, 1, skip)
	if err != nil || len(items) == 0 {
		return Item{}, 0, false, err
	}
	return items[0], dists[0], true, nil
}

func pushNN(h *nnHeap, n *Node, q geom.Point) {
	for _, ne := range n.Entries {
		e := nnEntry{child: ne.Child, id: ne.ID}
		if n.Leaf {
			e.point = ne.Rect.Min
			e.child = pagestore.InvalidPage
			e.dist = distSq(q, e.point)
		} else {
			e.dist = minDistSq(q, ne.Rect)
		}
		heaputil.Push((*[]nnEntry)(h), lessNN, e)
	}
}
