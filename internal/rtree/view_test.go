package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// freeze flushes the pool, publishes the epoch, and returns a view of
// the tree at it.
func freeze(t *testing.T, tree *Tree, vs *pagestore.VersionedStore) (*View, *pagestore.Snapshot) {
	t.Helper()
	if err := tree.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	vs.Publish()
	snap := vs.Acquire()
	return NewView(snap, tree.Dims(), tree.Meta()), snap
}

func sortedItems(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sameItems(t *testing.T, label string, got, want []Item) {
	t.Helper()
	g, w := sortedItems(got), sortedItems(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d items, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i].ID != w[i].ID || !g[i].Point.Equal(w[i].Point) {
			t.Fatalf("%s: item %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// A frozen view keeps answering with the tree as of its epoch — window
// search, full scan, and kNN — while the live tree absorbs physical
// inserts, deletes, splits, and root changes.
func TestViewFrozenAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vs := pagestore.NewVersioned(pagestore.NewMemStore(256))
	pool := pagestore.NewBufferPool(vs, 1<<20)
	tree, err := New(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	var live []Item
	for i := 0; i < 300; i++ {
		it := Item{ID: uint64(i + 1), Point: geom.Point{rng.Float64(), rng.Float64()}}
		if err := tree.Insert(it); err != nil {
			t.Fatal(err)
		}
		live = append(live, it)
	}
	frozen := append([]Item(nil), live...)
	view, snap := freeze(t, tree, vs)
	defer snap.Release()

	frozenKNN, _, err := tree.NearestNeighbors(geom.Point{0.5, 0.5}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Churn the live tree hard enough to split, shrink, and relocate
	// nodes: delete half, insert a new generation.
	for i := 0; i < 150; i++ {
		idx := rng.Intn(len(live))
		if err := tree.Delete(live[idx]); err != nil {
			t.Fatal(err)
		}
		live[idx] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	for i := 0; i < 200; i++ {
		it := Item{ID: uint64(10_000 + i), Point: geom.Point{rng.Float64(), rng.Float64()}}
		if err := tree.Insert(it); err != nil {
			t.Fatal(err)
		}
		live = append(live, it)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	gotFrozen, err := view.Items()
	if err != nil {
		t.Fatal(err)
	}
	sameItems(t, "frozen view", gotFrozen, frozen)
	gotLive, err := tree.Items()
	if err != nil {
		t.Fatal(err)
	}
	sameItems(t, "live tree", gotLive, live)

	// kNN over the view reproduces the pre-mutation answer exactly.
	viewKNN, _, err := view.NearestNeighbors(geom.Point{0.5, 0.5}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(viewKNN) != len(frozenKNN) {
		t.Fatalf("view kNN %d results, want %d", len(viewKNN), len(frozenKNN))
	}
	for i := range viewKNN {
		if viewKNN[i].ID != frozenKNN[i].ID {
			t.Fatalf("view kNN[%d] = %d, want %d", i, viewKNN[i].ID, frozenKNN[i].ID)
		}
	}

	// Window search over the view sees only frozen items.
	q := geom.Rect{Min: geom.Point{0.2, 0.2}, Max: geom.Point{0.8, 0.8}}
	want := 0
	for _, it := range frozen {
		if q.Contains(it.Point) {
			want++
		}
	}
	got := 0
	if err := view.Search(q, func(Item) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("view window search found %d, want %d", got, want)
	}
}

// Two views at different epochs answer independently.
func TestViewMultiEpoch(t *testing.T) {
	vs := pagestore.NewVersioned(pagestore.NewMemStore(256))
	pool := pagestore.NewBufferPool(vs, 1<<20)
	tree, err := New(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := tree.Insert(Item{ID: uint64(i), Point: geom.Point{float64(i), float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	v1, s1 := freeze(t, tree, vs)
	defer s1.Release()
	for i := 51; i <= 120; i++ {
		if err := tree.Insert(Item{ID: uint64(i), Point: geom.Point{float64(i), float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	v2, s2 := freeze(t, tree, vs)
	defer s2.Release()
	if v1.Len() != 50 || v2.Len() != 120 {
		t.Fatalf("view sizes %d/%d, want 50/120", v1.Len(), v2.Len())
	}
	i1, err := v1.Items()
	if err != nil {
		t.Fatal(err)
	}
	i2, err := v2.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(i1) != 50 || len(i2) != 120 {
		t.Fatalf("view item counts %d/%d, want 50/120", len(i1), len(i2))
	}
}
