package rtree

import (
	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// Delete removes the item (matched by ID and point) from the tree,
// condensing underfull nodes and reinserting their orphaned entries, as in
// Guttman's original algorithm. It returns ErrNotFound if the item is not
// stored.
func (t *Tree) Delete(item Item) error {
	path, err := t.findLeaf(t.root, item, t.height, nil)
	if err != nil {
		return err
	}
	if path == nil {
		return ErrNotFound
	}
	leaf := path[len(path)-1].node
	idx := -1
	for i, e := range leaf.Entries {
		if e.ID == item.ID && e.Rect.Min.Equal(item.Point) {
			idx = i
			break
		}
	}
	if idx == -1 {
		return ErrNotFound
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	if err := t.condenseTree(path); err != nil {
		return err
	}
	t.size--
	return nil
}

// findLeaf locates the leaf containing the item, returning the access path
// (root..leaf) or nil when absent. Unlike chooseSubtree it may explore
// several branches whose MBRs contain the point.
func (t *Tree) findLeaf(id pagestore.PageID, item Item, depth int, prefix []pathElem) ([]pathElem, error) {
	// Path nodes are mutated during condensation — use private copies.
	n, err := t.readNodeForUpdate(id)
	if err != nil {
		return nil, err
	}
	path := append(append([]pathElem(nil), prefix...), pathElem{node: n})
	if n.Leaf {
		for _, e := range n.Entries {
			if e.ID == item.ID && e.Rect.Min.Equal(item.Point) {
				return path, nil
			}
		}
		return nil, nil
	}
	for i, e := range n.Entries {
		if !e.Rect.Contains(item.Point) {
			continue
		}
		path[len(path)-1].entryIdx = i
		found, err := t.findLeaf(e.Child, item, depth-1, path)
		if err != nil {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, nil
}

// orphan is a subtree (or leaf entry) detached during condensation that
// must be reinserted at its original level.
type orphan struct {
	entry Entry
	level int // 1 = leaf entry
}

// condenseTree ascends the deletion path: underfull nodes are removed and
// their entries queued for reinsertion; MBRs along the path shrink.
func (t *Tree) condenseTree(path []pathElem) error {
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i].node
		parent := path[i-1].node
		minFill := t.minInternal
		level := len(path) - i
		if n.Leaf {
			minFill = t.minLeaf
		}
		if len(n.Entries) < minFill {
			// Drop n from its parent; queue entries for reinsertion.
			pi := path[i-1].entryIdx
			parent.Entries = append(parent.Entries[:pi], parent.Entries[pi+1:]...)
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{entry: e, level: level})
			}
			if err := t.freeNode(n.Page); err != nil {
				return err
			}
		} else {
			if err := t.writeNode(n); err != nil {
				return err
			}
			parent.Entries[path[i-1].entryIdx].Rect = n.MBR()
		}
	}
	root := path[0].node
	if err := t.writeNode(root); err != nil {
		return err
	}

	// Shrink the root while it is an internal node with a single child.
	for {
		rn, err := t.ReadNode(t.root)
		if err != nil {
			return err
		}
		if rn.Leaf || len(rn.Entries) != 1 {
			break
		}
		child := rn.Entries[0].Child
		if err := t.freeNode(rn.Page); err != nil {
			return err
		}
		t.setRoot(child)
		t.height--
	}

	// Reinsert orphans. Leaf entries go back as normal inserts; subtree
	// entries are inserted at their original level, adjusted for any root
	// shrinking that happened above.
	for _, o := range orphans {
		level := o.level
		if level > t.height {
			level = t.height
		}
		if err := t.insertEntry(o.entry, level); err != nil {
			return err
		}
	}
	return nil
}

// DeletePoint removes the first item found with the given ID at the given
// point. It is a convenience wrapper mirroring Delete.
func (t *Tree) DeletePoint(id uint64, p geom.Point) error {
	return t.Delete(Item{ID: id, Point: p})
}
