package rtree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// warmAllNodes walks the whole tree once so every live page carries a
// decoded node in the cache.
func warmAllNodes(t *testing.T, tr *Tree) []*Node {
	t.Helper()
	var nodes []*Node
	var walk func(id pagestore.PageID)
	walk = func(id pagestore.PageID) {
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatalf("ReadNode(%d): %v", id, err)
		}
		nodes = append(nodes, n)
		if !n.Leaf {
			for _, e := range n.Entries {
				walk(e.Child)
			}
		}
	}
	walk(tr.Root())
	return nodes
}

// TestDeleteInvalidatesDecodedNodes deletes through a fully warmed
// cache and checks after every deletion that the ReadNode path serves
// exactly the current page bytes — no node decoded before the deletion
// may be served for a page the deletion rewrote.
func TestDeleteInvalidatesDecodedNodes(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1<<20) // everything stays resident
	rng := rand.New(rand.NewSource(21))
	items := make([]Item, 400)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Point: geom.Point{rng.Float64(), rng.Float64()}}
	}
	tr, err := BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	warmAllNodes(t, tr)

	perm := rng.Perm(len(items))
	for k, pi := range perm {
		if err := tr.Delete(items[pi]); err != nil {
			t.Fatalf("delete %d: %v", items[pi].ID, err)
		}
		// The deleted item must be gone from (cache-served) searches.
		found := false
		err := tr.Search(geom.RectFromPoint(items[pi].Point), func(it Item) bool {
			if it.ID == items[pi].ID {
				found = true
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("deleted item %d still served after deletion %d", items[pi].ID, k)
		}
		if k%25 == 0 {
			verifyNoStaleNodes(t, tr)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		// Keep the cache warm so the next deletion hits decoded nodes.
		warmAllNodes(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("tree holds %d items after deleting all", tr.Len())
	}
}

// TestDeleteUnderflowReinsertionCache forces node underflow (and the
// resulting orphan reinsertion plus root shrinking) with the decoded
// cache warm, then checks the cache against the rewritten pages.
func TestDeleteUnderflowReinsertionCache(t *testing.T) {
	store := pagestore.NewMemStore(256) // tiny pages: deep tree, easy underflow
	pool := pagestore.NewBufferPool(store, 1<<20)
	rng := rand.New(rand.NewSource(22))
	items := make([]Item, 600)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Point: geom.Point{rng.Float64(), rng.Float64()}}
	}
	tr, err := BulkLoad(pool, 2, items, 1.0) // full nodes: first deletes underflow
	if err != nil {
		t.Fatal(err)
	}
	startHeight := tr.Height()
	if startHeight < 3 {
		t.Fatalf("test needs height >= 3, got %d", startHeight)
	}
	warmAllNodes(t, tr)

	// Delete one spatial stripe: clusters of leaf-mates go together, so
	// leaves underflow and their survivors reinsert through new paths.
	for _, it := range items {
		if it.Point[0] > 0.3 {
			continue
		}
		if err := tr.Delete(it); err != nil {
			t.Fatalf("delete %d: %v", it.ID, err)
		}
	}
	verifyNoStaleNodes(t, tr)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Keep deleting until the root collapses at least one level.
	for _, it := range items {
		if tr.Height() < startHeight {
			break
		}
		if it.Point[0] <= 0.3 {
			continue
		}
		if err := tr.Delete(it); err != nil {
			t.Fatalf("delete %d: %v", it.ID, err)
		}
	}
	if tr.Height() >= startHeight {
		t.Fatalf("root never shrank (height %d)", tr.Height())
	}
	verifyNoStaleNodes(t, tr)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteConcurrentRetainedReaders pins the immutability contract
// the Workspace relies on: decoded nodes handed out by ReadNode stay
// valid and unchanged forever, so readers may keep consuming them WHILE
// deletions rewrite the underlying pages. Run with -race this fails if
// any update path mutates a shared cached node in place instead of
// copy-on-write (readNodeForUpdate).
func TestDeleteConcurrentRetainedReaders(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 16) // eviction traffic too
	rng := rand.New(rand.NewSource(23))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Point: geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	tr, err := BulkLoad(pool, 3, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	retained := warmAllNodes(t, tr)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var sink atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(nodes []*Node) {
			defer wg.Done()
			for !stop.Load() {
				var sum int64
				for _, n := range nodes {
					for _, e := range n.Entries {
						sum += int64(e.ID) + int64(e.Child)
						sum += int64(len(e.Rect.Min))
					}
				}
				sink.Add(sum)
			}
		}(retained)
	}

	// Concurrent writer: delete half the items (underflows included).
	for i, it := range items {
		if i%2 == 0 {
			continue
		}
		if err := tr.Delete(it); err != nil {
			t.Fatalf("delete %d: %v", it.ID, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyNoStaleNodes(t, tr)
	if tr.Len() != len(items)/2 {
		t.Fatalf("tree holds %d items, want %d", tr.Len(), len(items)/2)
	}
}
