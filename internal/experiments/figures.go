package experiments

import (
	"fmt"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// Fig8 — effect of the Section 5 optimizations (anti-correlated data,
// |F| = 1000): SB vs SB-UpdateSkyline vs SB-DeltaSky over D ∈ 3..5.
// Expected shape: UpdateSkyline ≈ an order of magnitude fewer I/Os than
// DeltaSky; full SB far faster in CPU at identical I/O.
func Fig8(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 8",
		Title:    "Effect of optimization techniques (anti-correlated, |F|=1000)",
		XLabel:   "D",
		AlgOrder: names([]algorithm{algSBDel, algSBUpd, algSB}),
	}
	nf, no := p.scaled(1000), p.scaled(defaultObjects)
	for _, dims := range []int{3, 4, 5} {
		objs := datagen.Objects(datagen.AntiCorrelated, no, dims, p.Seed+int64(dims))
		funcs := datagen.Functions(nf, dims, p.Seed+100+int64(dims))
		prob := &assign.Problem{Dims: dims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algSBDel, algSBUpd, algSB})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", dims), Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig9 — effect of dimensionality D for the three synthetic
// distributions: SB vs Brute Force vs Chain (I/O, CPU, memory).
func Fig9(p Params) ([]*Result, error) {
	var out []*Result
	kinds := []datagen.Kind{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated}
	nf, no := p.scaled(defaultFuncs), p.scaled(defaultObjects)
	for _, kind := range kinds {
		res := &Result{
			Figure:   "Figure 9",
			Title:    fmt.Sprintf("Effect of dimensionality (%s)", kind),
			XLabel:   "D",
			AlgOrder: names([]algorithm{algBF, algChain, algSB}),
		}
		for _, dims := range []int{3, 4, 5, 6} {
			objs := datagen.Objects(kind, no, dims, p.Seed+int64(dims)*10+int64(kind))
			funcs := datagen.Functions(nf, dims, p.Seed+500+int64(dims))
			prob := &assign.Problem{Dims: dims, Objects: objs, Functions: funcs}
			outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", dims), Outcomes: outcomes})
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig10 — effect of the function cardinality |F| (anti-correlated).
func Fig10(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 10",
		Title:    "Effect of function cardinality |F| (anti-correlated)",
		XLabel:   "|F|",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	no := p.scaled(defaultObjects)
	objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+1)
	for _, nfBase := range []int{1000, 2500, 5000, 10000, 20000} {
		nf := p.scaled(nfBase)
		funcs := datagen.Functions(nf, defaultDims, p.Seed+600+int64(nfBase))
		prob := &assign.Problem{Dims: defaultDims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", nf), Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig11 — effect of the object cardinality |O| (anti-correlated).
func Fig11(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 11",
		Title:    "Effect of object cardinality |O| (anti-correlated)",
		XLabel:   "|O|",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	nf := p.scaled(defaultFuncs)
	funcs := datagen.Functions(nf, defaultDims, p.Seed+2)
	for _, noBase := range []int{10000, 50000, 100000, 200000, 400000} {
		no := p.scaled(noBase)
		objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+700+int64(noBase))
		prob := &assign.Problem{Dims: defaultDims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", no), Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig12 — effect of the preference-weight distribution: functions
// clustered around C Gaussian centers (σ = 0.05), D = 4.
func Fig12(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 12",
		Title:    "Effect of function distribution (clustered weights, anti-correlated)",
		XLabel:   "clusters C",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	nf, no := p.scaled(defaultFuncs), p.scaled(defaultObjects)
	objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+3)
	for _, c := range []int{1, 3, 5, 7, 9} {
		funcs := datagen.ClusteredFunctions(nf, defaultDims, c, 0.05, p.Seed+800+int64(c))
		prob := &assign.Problem{Dims: defaultDims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", c), Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig13 — effect of the LRU buffer size (0–10 % of the object index).
// SB's I/O must stay flat (its skyline maintenance never re-reads a
// node), while the competitors benefit from larger buffers.
func Fig13(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 13",
		Title:    "Effect of buffer size (anti-correlated)",
		XLabel:   "buffer",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	nf, no := p.scaled(defaultFuncs), p.scaled(defaultObjects)
	objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+4)
	funcs := datagen.Functions(nf, defaultDims, p.Seed+5)
	for _, frac := range []float64{-1, 0.01, 0.02, 0.05, 0.10} {
		cfg := defaultCfg()
		cfg.BufferFrac = frac // -1 encodes the paper's 0 % buffer
		prob := &assign.Problem{Dims: defaultDims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, cfg, []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.0f%%", frac*100)
		if frac < 0 {
			label = "0%"
		}
		res.Rows = append(res.Rows, Row{X: label, Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig14 — capacitated assignment: function capacities (panels a, b) and
// object capacities (panels c, d).
func Fig14(p Params) ([]*Result, error) {
	nf, no := p.scaled(defaultFuncs), p.scaled(defaultObjects)
	objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+6)
	funcs := datagen.Functions(nf, defaultDims, p.Seed+7)

	fcap := &Result{
		Figure:   "Figure 14(a,b)",
		Title:    "Effect of function capacity k (anti-correlated)",
		XLabel:   "function capacity k",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	for _, k := range []int{2, 4, 8, 16} {
		prob := &assign.Problem{
			Dims:      defaultDims,
			Objects:   objs,
			Functions: datagen.WithFunctionCapacity(funcs, k),
		}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		fcap.Rows = append(fcap.Rows, Row{X: fmt.Sprintf("%d", k), Outcomes: outcomes})
	}

	ocap := &Result{
		Figure:   "Figure 14(c,d)",
		Title:    "Effect of object capacity k (anti-correlated)",
		XLabel:   "object capacity k",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
	}
	for _, k := range []int{2, 4, 8, 16} {
		prob := &assign.Problem{
			Dims:      defaultDims,
			Objects:   datagen.WithObjectCapacity(objs, k),
			Functions: funcs,
		}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		ocap.Rows = append(ocap.Rows, Row{X: fmt.Sprintf("%d", k), Outcomes: outcomes})
	}
	return []*Result{fcap, ocap}, nil
}

// Fig15 — prioritized assignment: priorities drawn from [1..γ],
// including the two-skyline variant of Section 6.2.
func Fig15(p Params) ([]*Result, error) {
	res := &Result{
		Figure:   "Figure 15",
		Title:    "Effect of function priorities γ (anti-correlated)",
		XLabel:   "max priority γ",
		AlgOrder: names([]algorithm{algBF, algChain, algSB, algTwoSk}),
	}
	nf, no := p.scaled(defaultFuncs), p.scaled(defaultObjects)
	objs := datagen.Objects(datagen.AntiCorrelated, no, defaultDims, p.Seed+8)
	base := datagen.Functions(nf, defaultDims, p.Seed+9)
	for _, g := range []int{2, 4, 8, 16} {
		funcs := datagen.WithRandomGamma(base, g, p.Seed+900+int64(g))
		prob := &assign.Problem{Dims: defaultDims, Objects: objs, Functions: funcs}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB, algTwoSk})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", g), Outcomes: outcomes})
	}
	return []*Result{res}, nil
}

// Fig16 — real datasets: the Zillow-like object sweep (panels a, b) and
// the NBA-like capacitated assignment (panels c, d). The synthetic
// stand-ins reproduce the documented skew/correlation of the originals
// (see DESIGN.md).
func Fig16(p Params) ([]*Result, error) {
	zillow := &Result{
		Figure:   "Figure 16(a,b)",
		Title:    "Zillow-like real-estate data: effect of |O|",
		XLabel:   "|O|",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
		Notes:    "synthetic stand-in for the Zillow crawl (skewed, correlated, 5 attrs)",
	}
	nf := p.scaled(defaultFuncs)
	funcs5 := datagen.Functions(nf, 5, p.Seed+10)
	for _, noBase := range []int{10000, 50000, 100000, 200000, 400000} {
		no := p.scaled(noBase)
		objs := datagen.ZillowLike(no, p.Seed+1000+int64(noBase))
		prob := &assign.Problem{Dims: 5, Objects: objs, Functions: funcs5}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		zillow.Rows = append(zillow.Rows, Row{X: fmt.Sprintf("%d", no), Outcomes: outcomes})
	}

	nba := &Result{
		Figure:   "Figure 16(c,d)",
		Title:    "NBA-like player data: capacitated assignment",
		XLabel:   "function capacity k",
		AlgOrder: names([]algorithm{algBF, algChain, algSB}),
		Notes:    "synthetic stand-in for NBA Statistics v2.1 (12278 players, 5 attrs)",
	}
	nbaObjs := datagen.NBALikeN(p.scaled(12278), p.Seed+11)
	nbaFuncs := datagen.Functions(p.scaled(1000), 5, p.Seed+12)
	for _, k := range []int{1, 5, 9, 12} {
		prob := &assign.Problem{
			Dims:      5,
			Objects:   nbaObjs,
			Functions: datagen.WithFunctionCapacity(nbaFuncs, k),
		}
		outcomes, err := runPoint(prob, defaultCfg(), []algorithm{algBF, algChain, algSB})
		if err != nil {
			return nil, err
		}
		nba.Rows = append(nba.Rows, Row{X: fmt.Sprintf("%d", k), Outcomes: outcomes})
	}
	return []*Result{zillow, nba}, nil
}

// Fig17 — the disk-resident-F storage setting (Section 7.6): function
// and object cardinalities swapped, O fully memory-resident, every
// function-side access charged as I/O. SB-alt's batch search saves
// orders of magnitude of I/O.
func Fig17(p Params) ([]*Result, error) {
	var out []*Result
	algs := []algorithm{algBFDkF, algChDkF, algSBDkF, algSBAlt}
	// Swapped cardinalities: |F| takes the object default, |O| the
	// function default.
	nf, no := p.scaled(defaultObjects), p.scaled(defaultFuncs)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		res := &Result{
			Figure:   "Figure 17",
			Title:    fmt.Sprintf("F on disk, O in memory (%s)", kind),
			XLabel:   "D",
			AlgOrder: []string{"BruteForce", "Chain", "SB", "SB-alt"},
			Notes:    "function-side page accesses charged as I/O; object index memory-resident",
		}
		for _, dims := range []int{3, 4, 5, 6} {
			objs := datagen.Objects(kind, no, dims, p.Seed+1100+int64(dims)*10+int64(kind))
			funcs := datagen.Functions(nf, dims, p.Seed+1200+int64(dims))
			prob := &assign.Problem{Dims: dims, Objects: objs, Functions: funcs}
			cfg := defaultCfg()
			cfg.BufferFrac = 1.0 // object side memory-resident
			cfg.FuncBufferFrac = defaultBuffer
			outcomes, err := runPoint(prob, cfg, algs)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", dims), Outcomes: outcomes})
		}
		out = append(out, res)
	}
	return out, nil
}
