package experiments

import (
	"strings"
	"testing"
)

// tiny returns parameters small enough for CI while keeping every
// qualitative trend measurable.
func tiny() Params { return Params{Scale: 0.01, Seed: 42} }

func rowsOf(t *testing.T, rs []*Result) {
	t.Helper()
	for _, r := range rs {
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", r.Figure)
		}
		for _, row := range r.Rows {
			for _, alg := range r.AlgOrder {
				if _, ok := row.Outcomes[alg]; !ok {
					t.Fatalf("%s row %s: missing outcome for %s", r.Figure, row.X, alg)
				}
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rs, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	for _, row := range rs[0].Rows {
		del := row.Outcomes["SB-DeltaSky"]
		upd := row.Outcomes["SB-UpdateSkyline"]
		sb := row.Outcomes["SB"]
		if del.IO < upd.IO {
			t.Errorf("D=%s: DeltaSky I/O (%d) below UpdateSkyline (%d)", row.X, del.IO, upd.IO)
		}
		if sb.IO != upd.IO {
			t.Errorf("D=%s: SB I/O (%d) must equal SB-UpdateSkyline (%d) — same maintenance module",
				row.X, sb.IO, upd.IO)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rs, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	if len(rs) != 3 {
		t.Fatalf("Fig9 should produce 3 sub-figures (one per distribution), got %d", len(rs))
	}
	for _, r := range rs {
		for _, row := range r.Rows {
			sb := row.Outcomes["SB"]
			bf := row.Outcomes["BruteForce"]
			ch := row.Outcomes["Chain"]
			if sb.IO > bf.IO || sb.IO > ch.IO {
				t.Errorf("%s D=%s: SB I/O (%d) should be the lowest (BF %d, Chain %d)",
					r.Title, row.X, sb.IO, bf.IO, ch.IO)
			}
		}
	}
}

func TestFig13BufferShape(t *testing.T) {
	rs, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	rows := rs[0].Rows
	// SB's I/O is flat: its skyline maintenance never revisits a node, so
	// buffering cannot help it.
	first := rows[0].Outcomes["SB"].IO
	for _, row := range rows[1:] {
		if row.Outcomes["SB"].IO != first {
			t.Errorf("SB I/O should be buffer-independent: %d at %s vs %d at %s",
				row.Outcomes["SB"].IO, row.X, first, rows[0].X)
		}
	}
	// The competitors improve with a larger buffer.
	if rows[len(rows)-1].Outcomes["BruteForce"].IO > rows[0].Outcomes["BruteForce"].IO {
		t.Error("BruteForce I/O should not grow with buffer size")
	}
}

func TestFig14CapacityShape(t *testing.T) {
	rs, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	fcap := rs[0].Rows
	// Function capacity grows the problem: more pairs at k=16 than k=2.
	if fcap[len(fcap)-1].Outcomes["SB"].Pairs <= fcap[0].Outcomes["SB"].Pairs {
		t.Error("function capacity should increase the number of pairs")
	}
}

func TestFig15PriorityShape(t *testing.T) {
	rs, err := Fig15(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	for _, row := range rs[0].Rows {
		if _, ok := row.Outcomes["SB-TwoSkylines"]; !ok {
			t.Fatal("two-skyline variant missing from Fig15")
		}
	}
}

func TestFig17Shape(t *testing.T) {
	// The batch search amortizes one list pass over the whole skyline, so
	// its advantage needs a non-trivial skyline: use a slightly larger
	// scale than the other smoke tests and assert on the highest
	// dimensionality, where the paper's gap is widest.
	rs, err := Fig17(Params{Scale: 0.03, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rowsOf(t, rs)
	if len(rs) != 2 {
		t.Fatalf("Fig17 should produce 2 sub-figures, got %d", len(rs))
	}
	for _, r := range rs {
		for _, row := range r.Rows {
			if row.X != "6" {
				continue
			}
			alt := row.Outcomes["SB-alt"]
			sb := row.Outcomes["SB"]
			if alt.IO > sb.IO {
				t.Errorf("%s D=%s: SB-alt I/O (%d) should not exceed SB (%d)",
					r.Title, row.X, alt.IO, sb.IO)
			}
		}
	}
}

func TestRemainingFiguresRun(t *testing.T) {
	for _, id := range []string{"fig10", "fig11", "fig12", "fig16"} {
		rs, err := Registry[id](tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		rowsOf(t, rs)
	}
}

func TestFormatRendersAllMetrics(t *testing.T) {
	rs, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	text := rs[0].Format()
	for _, want := range []string{"I/O accesses", "CPU time (s)", "memory (MB)", "Figure 8", "SB-DeltaSky"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
}

func TestFigureIDsComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 10 {
		t.Fatalf("expected 10 figures, got %d: %v", len(ids), ids)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(0)
	if p.Scale != 1 {
		t.Errorf("Scale = %v, want 1", p.Scale)
	}
	if p.scaled(100) != 100 {
		t.Errorf("scaled(100) at 1.0 = %d", p.scaled(100))
	}
	small := Params{Scale: 0.001}
	if small.scaled(1000) != 16 {
		t.Errorf("scaled should floor at 16, got %d", small.scaled(1000))
	}
}
