// Package experiments reproduces every figure of the paper's evaluation
// (Section 7). Each RunFigN function regenerates the series of one paper
// figure — same sweeps, same algorithms, same metrics (I/O accesses, CPU
// time, peak search-structure memory) — at a configurable scale factor so
// that both quick sanity runs and full-size reproductions use the same
// code path. cmd/benchfig prints the tables; bench_test.go wraps each
// runner in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fairassign/internal/assign"
)

// Params controls an experiment run.
type Params struct {
	// Scale multiplies the paper's cardinalities (1.0 = full size).
	Scale float64
	// Seed drives all data generation.
	Seed int64
}

// DefaultParams returns the paper's Table 2 defaults at the given scale.
func DefaultParams(scale float64) Params {
	if scale <= 0 {
		scale = 1
	}
	return Params{Scale: scale, Seed: 20090824} // VLDB'09 started Aug 24, 2009
}

// Paper defaults (Table 2, bold values).
const (
	defaultFuncs   = 5000
	defaultObjects = 100000
	defaultDims    = 4
	defaultBuffer  = 0.02
	defaultOmega   = 0.025
)

func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// Outcome is one algorithm's measurement at one sweep point.
type Outcome struct {
	IO    int64
	CPUs  float64 // seconds
	MemMB float64
	Pairs int64
}

// Row is one sweep point: an x value and one outcome per algorithm.
type Row struct {
	X        string
	Outcomes map[string]Outcome
}

// Result is a reproduced figure.
type Result struct {
	Figure   string
	Title    string
	XLabel   string
	AlgOrder []string
	Rows     []Row
	Notes    string
}

// algorithm couples a display name with its runner.
type algorithm struct {
	name string
	run  func(*assign.Problem, assign.Config) (*assign.Result, error)
}

var (
	algSB    = algorithm{"SB", assign.SB}
	algSBUpd = algorithm{"SB-UpdateSkyline", assign.SBBasic}
	algSBDel = algorithm{"SB-DeltaSky", assign.SBDeltaSky}
	algBF    = algorithm{"BruteForce", assign.BruteForce}
	algChain = algorithm{"Chain", assign.Chain}
	algTwoSk = algorithm{"SB-TwoSkylines", assign.SBTwoSkylines}
	algSBAlt = algorithm{"SB-alt", assign.SBAlt}
	algSBDkF = algorithm{"SB", assign.SBDiskFuncs} // F on disk (Fig 17)
	algBFDkF = algorithm{"BruteForce", assign.BruteForceDiskFuncs}
	algChDkF = algorithm{"Chain", assign.ChainDiskFuncs}
)

func outcomeOf(r *assign.Result) Outcome {
	return Outcome{
		IO:    r.Stats.IO.Accesses(),
		CPUs:  r.Stats.CPUTime.Seconds(),
		MemMB: float64(r.Stats.PeakMem) / 1e6,
		Pairs: r.Stats.Pairs,
	}
}

// runPoint executes every algorithm on one problem instance.
func runPoint(p *assign.Problem, cfg assign.Config, algs []algorithm) (map[string]Outcome, error) {
	out := make(map[string]Outcome, len(algs))
	var wantPairs int64 = -1
	for _, a := range algs {
		r, err := a.run(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		if wantPairs == -1 {
			wantPairs = r.Stats.Pairs
		} else if r.Stats.Pairs != wantPairs {
			return nil, fmt.Errorf("%s produced %d pairs, others produced %d",
				a.name, r.Stats.Pairs, wantPairs)
		}
		out[a.name] = outcomeOf(r)
	}
	return out, nil
}

func names(algs []algorithm) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = a.name
	}
	return out
}

func defaultCfg() assign.Config {
	return assign.Config{BufferFrac: defaultBuffer, OmegaFrac: defaultOmega}
}

// Format renders the figure as aligned text tables, one block per metric.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Figure, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	metrics := []struct {
		label string
		pick  func(Outcome) string
	}{
		{"I/O accesses", func(o Outcome) string { return fmt.Sprintf("%d", o.IO) }},
		{"CPU time (s)", func(o Outcome) string { return fmt.Sprintf("%.3f", o.CPUs) }},
		{"memory (MB)", func(o Outcome) string { return fmt.Sprintf("%.3f", o.MemMB) }},
	}
	for _, m := range metrics {
		fmt.Fprintf(&b, "\n  [%s]\n", m.label)
		fmt.Fprintf(&b, "  %-24s", r.XLabel)
		for _, a := range r.AlgOrder {
			fmt.Fprintf(&b, "%20s", a)
		}
		b.WriteByte('\n')
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "  %-24s", row.X)
			for _, a := range r.AlgOrder {
				fmt.Fprintf(&b, "%20s", m.pick(row.Outcomes[a]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Registry maps figure identifiers to runners, for cmd/benchfig.
var Registry = map[string]func(Params) ([]*Result, error){
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"fig16": Fig16,
	"fig17": Fig17,
}

// FigureIDs returns the registry keys in order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All runs every figure.
func All(p Params) ([]*Result, error) {
	var out []*Result
	for _, id := range FigureIDs() {
		rs, err := Registry[id](p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}
