package fairassign

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"fairassign/internal/assign"
	"fairassign/internal/score"
)

// Typed input errors for preference-family handling. Loader and solver
// errors wrap these sentinels; match with errors.Is.
var (
	// ErrBadScorerKind is returned when a scorer kind name (e.g. the CSV
	// `kind` column) is not one of linear|owa|minimax|best|median|
	// chebyshev|lp:<p>.
	ErrBadScorerKind = errors.New("fairassign: bad scorer kind")
	// ErrBadWeight is returned for NaN, ±Inf, or negative weights, on
	// every scorer family (OWA position weights included).
	ErrBadWeight = errors.New("fairassign: bad weight")
)

// Scorer selects the preference family of a Function. The paper models
// every user as a linear function f(o) = Σ αᵢ·oᵢ; its algorithms (SB,
// TA ranked retrieval, BRS pruning) only require that f be a *monotone*
// aggregate, and a Scorer generalizes the stack to the standard
// monotone families:
//
//   - Linear(w...):    Σ wᵢ·oᵢ — the default; Function.Scorer == nil
//     means Linear over Function.Weights;
//   - OWA(w...):       Σ wⱼ·o₍ⱼ₎ over attribute values sorted
//     descending — order-weighted averages, which subsume Minimax()
//     (egalitarian: score = worst attribute), Best() (optimistic:
//     score = best attribute), Median(), and any Hurwicz mixture;
//   - Chebyshev(w...): maxᵢ wᵢ·oᵢ — weighted max scalarization;
//   - Lp(p, w...):     (Σ wᵢ·oᵢᵖ)^(1/p), p ≥ 1.
//
// Weights are normalized to sum to 1 exactly as linear weights are
// (see WeightNormalizationTolerance), and the priority Gamma multiplies
// the score for every family. Constructors may be called without
// weights — OWA shortcuts (Minimax, Best, Median) derive theirs from
// the problem dimensionality, and the other kinds fall back to
// Function.Weights — so one Scorer value can be shared by many
// functions.
//
// All families produce scores on the same [0, γ] scale for attributes
// in [0,1], so mixed populations (some users linear, some egalitarian)
// compete fairly in one assignment.
type Scorer struct {
	kind    score.Kind
	p       float64 // Lp exponent
	weights []float64
	pattern owaPattern
}

// owaPattern marks the dimensionality-dependent OWA shortcuts whose
// weight vectors are expanded when the problem dimensionality is known.
type owaPattern uint8

const (
	patNone owaPattern = iota
	patMinimax
	patBest
	patMedian
)

// Linear returns the explicit form of the default linear family,
// Σ wᵢ·oᵢ. With no weights, Function.Weights is used.
func Linear(weights ...float64) *Scorer {
	return &Scorer{kind: score.Linear, weights: weights}
}

// OWA returns an order-weighted average: weight position j applies to
// the j-th LARGEST attribute value. With no weights, Function.Weights
// is used (as position weights).
func OWA(weights ...float64) *Scorer {
	return &Scorer{kind: score.OWA, weights: weights}
}

// Minimax returns the egalitarian scorer: an object is judged by its
// worst attribute (OWA with all weight on the last position). The
// stable matching then maximizes each user's worst-case satisfaction
// greedily — the minimax fairness objective of the ordinal-preference
// literature.
func Minimax() *Scorer { return &Scorer{kind: score.OWA, pattern: patMinimax} }

// Best returns the optimistic scorer: an object is judged by its best
// attribute (OWA with all weight on the first position).
func Best() *Scorer { return &Scorer{kind: score.OWA, pattern: patBest} }

// Median returns the median scorer: an object is judged by the median
// of its attribute values (mean of the two middle values when the
// dimensionality is even).
func Median() *Scorer { return &Scorer{kind: score.OWA, pattern: patMedian} }

// Chebyshev returns the weighted-max scorer maxᵢ wᵢ·oᵢ. With no
// weights, Function.Weights is used.
func Chebyshev(weights ...float64) *Scorer {
	return &Scorer{kind: score.Chebyshev, weights: weights}
}

// Lp returns the weighted p-norm scorer (Σ wᵢ·oᵢᵖ)^(1/p). p must be a
// finite value ≥ 1 (validated at solver construction); p = 1 is Linear.
// With no weights, Function.Weights is used.
func Lp(p float64, weights ...float64) *Scorer {
	return &Scorer{kind: score.Lp, p: p, weights: weights}
}

// String names the scorer in the CSV `kind` column vocabulary.
func (s *Scorer) String() string {
	if s == nil {
		return "linear"
	}
	switch s.pattern {
	case patMinimax:
		return "minimax"
	case patBest:
		return "best"
	case patMedian:
		return "median"
	}
	if s.kind == score.Lp {
		return fmt.Sprintf("lp:%g", s.p)
	}
	return s.kind.String()
}

// family converts to the internal representation.
func (s *Scorer) family() score.Family {
	if s == nil {
		return score.Family{}
	}
	return score.Family{Kind: s.kind, P: s.p}
}

// patternWeights expands a dimensionality-dependent OWA shortcut (one
// shared implementation in internal/score, also used by the test-data
// generators).
func (s *Scorer) patternWeights(dims int) []float64 {
	switch s.pattern {
	case patBest:
		return score.BestWeights(dims)
	case patMedian:
		return score.MedianWeights(dims)
	default: // patMinimax
		return score.MinimaxWeights(dims)
	}
}

// resolveFunction maps a public Function — weights, optional Scorer,
// gamma, capacity — onto the internal representation: a scoring family
// plus one concrete, validated, normalized weight vector. Weight
// precedence: a Scorer carrying weights wins; a pattern scorer
// (Minimax/Best/Median) derives them from the problem dimensionality;
// otherwise Function.Weights parameterize the family.
func resolveFunction(f Function, opts Options, dims int) (assign.Function, error) {
	fam := f.Scorer.family()
	if err := fam.Validate(); err != nil {
		return assign.Function{}, fmt.Errorf("%w: function %d: %v", ErrBadScorerKind, f.ID, err)
	}
	var raw []float64
	switch {
	case f.Scorer != nil && f.Scorer.pattern != patNone:
		if dims <= 0 {
			return assign.Function{}, fmt.Errorf("fairassign: function %d uses a %s scorer but the dimensionality is unknown", f.ID, f.Scorer)
		}
		raw = f.Scorer.patternWeights(dims)
	case f.Scorer != nil && len(f.Scorer.weights) > 0:
		raw = append([]float64(nil), f.Scorer.weights...)
	default:
		raw = append([]float64(nil), f.Weights...)
	}
	w, err := normalizeWeights(raw, f.ID, opts)
	if err != nil {
		return assign.Function{}, err
	}
	return assign.Function{
		ID:       f.ID,
		Weights:  w,
		Gamma:    f.Gamma,
		Capacity: f.Capacity,
		Fam:      fam,
	}, nil
}

// funcDims reports the dimensionality derivable from one function's
// explicit weights (0 when it carries none, e.g. a pattern scorer).
func funcDims(f Function) int {
	if f.Scorer != nil && len(f.Scorer.weights) > 0 {
		return len(f.Scorer.weights)
	}
	return len(f.Weights)
}

// problemDims derives the shared dimensionality of a problem: the first
// object's attribute count, else the first function with explicit
// weights.
func problemDims(objects []Object, functions []Function) int {
	if len(objects) > 0 {
		return len(objects[0].Attributes)
	}
	for _, f := range functions {
		if d := funcDims(f); d > 0 {
			return d
		}
	}
	return 0
}

// ParseScorerKind parses a CSV/CLI scorer-kind cell:
// linear|owa|minimax|best|median|chebyshev|lp:<p>. Errors wrap
// ErrBadScorerKind.
func ParseScorerKind(cell string) (*Scorer, error) {
	switch cell {
	case "", "linear":
		return nil, nil
	case "owa":
		return OWA(), nil
	case "minimax":
		return Minimax(), nil
	case "best":
		return Best(), nil
	case "median":
		return Median(), nil
	case "chebyshev":
		return Chebyshev(), nil
	}
	if len(cell) > 3 && cell[:3] == "lp:" {
		p, err := strconv.ParseFloat(cell[3:], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad lp exponent %q", ErrBadScorerKind, cell)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 1 {
			return nil, fmt.Errorf("%w: lp exponent must be a finite p >= 1, got %q", ErrBadScorerKind, cell)
		}
		return Lp(p), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrBadScorerKind, cell)
}
