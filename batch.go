package fairassign

import (
	"runtime"

	"fairassign/internal/assign"
)

// BatchItem is one independent assignment problem inside a SolveBatch
// call: its own objects, functions, and (optionally) solver options.
type BatchItem struct {
	Objects   []Object
	Functions []Function
	// Options for this item; nil inherits the batch defaults.
	Options *Options
}

// BatchOptions tunes a SolveBatch call.
type BatchOptions struct {
	// Parallelism bounds how many problems are solved concurrently.
	// 0 (or negative) uses one worker per available CPU; 1 solves
	// sequentially. Each solve may additionally use Options.Workers
	// goroutines internally, so the total goroutine count is up to
	// Parallelism × Workers.
	Parallelism int
	// Defaults are the solver options applied to items whose Options
	// field is nil.
	Defaults Options
}

// BatchResult is the outcome of one batch item: exactly one of Result
// and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// SolveBatch solves many independent assignment problems concurrently —
// the multi-tenant serving path, where separate query sets (tenants,
// regions, time slices) share a machine. Every problem is fully isolated:
// it gets its own index, buffer pool, and counters, so items never
// contend on state and a failing item (invalid input) reports its error
// in its own slot without disturbing the others.
//
// Results are returned in input order. Each item is solved by the same
// code path as Solver.Solve, so per-item results are byte-identical to a
// standalone solve regardless of Parallelism.
func SolveBatch(items []BatchItem, opts BatchOptions) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	assign.ParallelFor(len(items), workers, func(i int) {
		item := items[i]
		o := opts.Defaults
		if item.Options != nil {
			o = *item.Options
		}
		solver, err := NewSolver(item.Objects, item.Functions, o)
		if err != nil {
			out[i] = BatchResult{Err: err}
			return
		}
		res, err := solver.Solve()
		if err != nil {
			out[i] = BatchResult{Err: err}
			return
		}
		out[i] = BatchResult{Result: res}
	})
	return out
}
