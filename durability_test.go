package fairassign

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func durableOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		PageSize:       512,
		BufferFraction: 0.1,
		Durable:        true,
		WALDir:         filepath.Join(t.TempDir(), "dur"),
	}
}

// TestDurableWarmStartEndToEnd is the acceptance path: mutate, save at
// epoch E, reopen from disk, and serve Assignment / TopK / Verify
// identically — without re-solving.
func TestDurableWarmStartEndToEnd(t *testing.T) {
	objects := GenerateObjects(Independent, 100, 3, 11)
	functions := GenerateFunctions(15, 3, 12)
	opts := durableOpts(t)

	ws, err := NewWorkspace(objects, functions, opts)
	if err != nil {
		t.Fatal(err)
	}
	newObjs := GenerateObjects(Correlated, 10, 3, 13)
	for i := range newObjs {
		newObjs[i].ID = 5000 + uint64(i)
		if err := ws.AddObject(newObjs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.RemoveFunction(functions[3].ID); err != nil {
		t.Fatal(err)
	}
	if err := ws.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	wantAssign := ws.Assignment()
	wantStats := ws.Stats()
	probe := Function{ID: 9999, Weights: []float64{0.2, 0.5, 0.3}}
	wv, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := wv.TopK(probe, 7)
	if err != nil {
		t.Fatal(err)
	}
	wv.Close()
	ws.Close()

	r, err := OpenWorkspace(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if info == nil {
		t.Fatal("recovered workspace reports no RecoveryInfo")
	}
	if info.BatchesReplayed != 0 {
		t.Fatalf("warm start replayed %d batches, want 0", info.BatchesReplayed)
	}
	gotStats := r.Stats()
	if gotStats.Resolves != wantStats.Resolves {
		t.Fatalf("recovery re-solved: resolves %d, want %d", gotStats.Resolves, wantStats.Resolves)
	}
	if !reflect.DeepEqual(r.Assignment(), wantAssign) {
		t.Fatal("recovered assignment differs")
	}
	gotStats.IOAccesses, wantStats.IOAccesses = 0, 0
	if gotStats != wantStats {
		t.Fatalf("recovered stats = %+v, want %+v", gotStats, wantStats)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("recovered matching unstable: %v", err)
	}
	rv, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	gotTopK, err := rv.TopK(probe, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTopK, wantTopK) {
		t.Fatalf("recovered TopK = %+v, want %+v", gotTopK, wantTopK)
	}

	// And the recovered workspace keeps serving mutations.
	if err := r.AddFunction(Function{ID: 8888, Weights: []float64{1, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("post-recovery mutation broke stability: %v", err)
	}
}

func TestDurableCrashReplayEndToEnd(t *testing.T) {
	objects := GenerateObjects(Independent, 60, 2, 21)
	functions := GenerateFunctions(10, 2, 22)
	opts := durableOpts(t)

	ws, err := NewWorkspace(objects, functions, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations after construction are only in the WAL — no explicit
	// snapshot. Abandon without Close to simulate a crash (the WAL was
	// fsynced before each acknowledgment).
	muts := []Mutation{
		AddObjectOp(Object{ID: 7000, Attributes: []float64{0.9, 0.8}}),
		AddFunctionOp(Function{ID: 7001, Weights: []float64{0.4, 0.6}}),
		RemoveObjectOp(objects[0].ID),
	}
	if err := ws.Apply(muts); err != nil {
		t.Fatal(err)
	}
	want := ws.Assignment()

	r, err := OpenWorkspace(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if info.BatchesReplayed != 1 || info.MutationsReplayed != 3 {
		t.Fatalf("recovery info = %+v, want 1 batch / 3 mutations replayed", info)
	}
	if !reflect.DeepEqual(r.Assignment(), want) {
		t.Fatal("replayed assignment differs from acknowledged state")
	}
	ws.Close()
}

func TestDurableTypedErrorsPublic(t *testing.T) {
	if _, err := OpenWorkspace(Options{}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("OpenWorkspace without WALDir: %v", err)
	}
	if _, err := OpenWorkspace(Options{WALDir: filepath.Join(t.TempDir(), "empty")}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("OpenWorkspace on empty dir: %v", err)
	}

	opts := durableOpts(t)
	ws, err := NewWorkspace(GenerateObjects(Independent, 20, 2, 1), GenerateFunctions(4, 2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()
	if _, err := NewWorkspace(GenerateObjects(Independent, 20, 2, 1), GenerateFunctions(4, 2, 2), opts); !errors.Is(err, ErrDurableDirInUse) {
		t.Fatalf("NewWorkspace on used dir: %v", err)
	}

	nd, err := NewWorkspace(GenerateObjects(Independent, 20, 2, 1), GenerateFunctions(4, 2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.SaveSnapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("SaveSnapshot without WALDir: %v", err)
	}
}
