package fairassign

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeFuzzFile materializes fuzz input as a CSV file for the loaders.
func writeFuzzFile(t *testing.T, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// FuzzLoadObjectsCSV drives the object loader with arbitrary bytes. The
// loader must never panic, and any objects it accepts must satisfy the
// invariant downstream code relies on: finite attribute values.
func FuzzLoadObjectsCSV(f *testing.F) {
	f.Add("1,0.5,0.25\n2,0.1,0.9\n")            // well-formed
	f.Add("id,a,b\n1,0.5,0.25\n")               // header row
	f.Add("1,NaN,0.5\n")                        // NaN attribute
	f.Add("1,+Inf,0.5\n2,-Inf,1\n")             // infinite attributes
	f.Add("1\n")                                // too few columns
	f.Add("abc,def\n")                          // non-numeric everywhere
	f.Add("1,0.5\n2,0.1,0.9\n")                 // ragged rows
	f.Add("18446744073709551615,1e308,2e308\n") // max id, overflow value
	f.Add("\"1\",\"0.5\",\"0.25\"\n")           // quoted cells
	f.Add("1,0.5,0.25")                         // no trailing newline
	f.Add("")                                   // empty file
	f.Fuzz(func(t *testing.T, data string) {
		objs, err := LoadObjectsCSV(writeFuzzFile(t, data))
		if err != nil {
			return
		}
		for _, o := range objs {
			for _, v := range o.Attributes {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("loader accepted non-finite attribute %v in object %d", v, o.ID)
				}
			}
		}
	})
}

// FuzzLoadFunctionsCSV drives the function loader (including the gamma
// and capacity extras) plus NewSolver's normalization on whatever the
// loader accepts: neither stage may panic, and every function a solver
// accepts must have finite normalized weights (non-normalized α in the
// input is normalized, never propagated raw).
func FuzzLoadFunctionsCSV(f *testing.F) {
	f.Add("1,0.5,0.5\n", 0)            // well-formed, normalized
	f.Add("1,3,1\n2,10,30\n", 0)       // non-normalized α
	f.Add("1,NaN,0.5\n", 0)            // NaN weight
	f.Add("1,Inf,0.5\n", 0)            // Inf weight
	f.Add("1,-1,2\n", 0)               // negative weight
	f.Add("1,0,0\n", 0)                // zero weights (normalization divides)
	f.Add("1,0.5,0.5,2\n", 1)          // gamma extra
	f.Add("1,0.5,0.5,2,3\n", 2)        // gamma + capacity extras
	f.Add("1,0.5,0.5,NaN\n", 1)        // NaN gamma
	f.Add("1,0.5,0.5,2,notanint\n", 2) // bad capacity
	f.Add("id,w1,w2\n1,0.5,0.5\n", 0)  // header row
	f.Add("1,1e-320,1e-320\n", 0)      // subnormal weights
	f.Add("", 3)                       // extras out of range
	// Scorer-kind column (detected by a non-numeric second cell).
	f.Add("1,owa,0.5,0.5\n", 0)               // OWA position weights
	f.Add("1,minimax\n2,best\n3,median\n", 0) // pattern kinds, no weights
	f.Add("1,chebyshev,0.7,0.3\n", 0)         // weighted max
	f.Add("1,lp:2,0.5,0.5\n", 0)              // p-norm
	f.Add("1,lp:0.5,0.5,0.5\n", 0)            // rejected exponent (< 1)
	f.Add("1,lp:NaN,0.5,0.5\n", 0)            // rejected exponent (NaN)
	f.Add("1,frobnicate,0.5,0.5\n", 0)        // unknown kind
	f.Add("1,owa,-1,2\n", 0)                  // negative OWA weight
	f.Add("1,owa,NaN,0.5\n", 0)               // NaN OWA weight
	f.Add("1,minimax,3\n2,owa,1,2,4\n", 1)    // kinds + gamma extra
	f.Fuzz(func(t *testing.T, data string, extras int) {
		funcs, err := LoadFunctionsCSVExt(writeFuzzFile(t, data), extras)
		if err != nil {
			return
		}
		for _, fn := range funcs {
			for _, v := range fn.Weights {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("loader accepted non-finite weight %v in function %d", v, fn.ID)
				}
				if v < 0 {
					t.Fatalf("loader accepted negative weight %v in function %d", v, fn.ID)
				}
			}
			if math.IsNaN(fn.Gamma) || math.IsInf(fn.Gamma, 0) {
				t.Fatalf("loader accepted non-finite gamma %v in function %d", fn.Gamma, fn.ID)
			}
		}
		if len(funcs) == 0 || len(funcs) > 64 {
			return // keep the solver stage cheap
		}
		solver, err := NewSolver(nil, funcs, Options{})
		if err != nil {
			return // invalid inputs must fail cleanly, not panic
		}
		for _, fn := range solver.problem.Functions {
			for _, w := range fn.Weights {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					t.Fatalf("solver accepted non-finite normalized weight %v in function %d", w, fn.ID)
				}
			}
		}
	})
}
