package fairassign

import (
	"fmt"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
)

// Workspace is the long-lived, incremental counterpart of Solver. Where
// NewSolver(...).Solve() rebuilds the object index and search
// structures on every call, a Workspace builds them once and then
// *repairs* the stable matching in place as users and objects arrive or
// depart — the dynamic regime of a live serving system.
//
// Repair semantics versus Solve. After every mutation the workspace
// matching is exactly the matching Solve would produce on the current
// population (same pairs, scores equal to floating-point roundoff): a
// function arrival proposes down its preference order and displaces
// strictly worse assignments along a bounded chain; an object departure
// frees its holders, which re-chain; an object arrival or a function
// departure opens vacancies that pull the best wanting functions,
// cascading until no one benefits. Both sides rank every pair by the
// same score f(o), so the stable matching is unique and chain repair
// converges to it without a global recomputation. The skyline of
// objects with remaining capacity (the availability frontier) is
// maintained incrementally and prices every proposal: a displacement
// search only explores the index region that could beat the best freely
// available object.
//
// A Workspace is not safe for concurrent use; wrap it with a mutex (or
// shard by tenant, one workspace each) for concurrent serving.
type Workspace struct {
	ws   *assign.Workspace
	opts Options
}

// WorkspaceStats summarizes a workspace and the repair work it has
// performed since construction.
type WorkspaceStats struct {
	// Population and matching size.
	Objects       int
	Functions     int
	AssignedUnits int
	// AvailableFrontier is the current size of the maintained skyline
	// over objects with spare capacity.
	AvailableFrontier int
	// Mutations counts Add/Remove calls; ChainSteps counts the
	// reassignments repair performed for them; Searches counts the
	// bounded top-1 probes those chains issued. Resolves counts
	// from-scratch solves (always 1: the initial build).
	Mutations  int64
	ChainSteps int64
	Searches   int64
	Resolves   int64
	// IOAccesses is the paper's I/O metric accumulated over the
	// workspace lifetime (both indexes).
	IOAccesses int64
}

// NewWorkspace validates the inputs, builds the shared solver state,
// and computes the initial matching. Options are honored exactly as in
// NewSolver; the Algorithm field is ignored (the initial solve is SB,
// mutations use chain repair).
func NewWorkspace(objects []Object, functions []Function, opts Options) (*Workspace, error) {
	if len(objects) == 0 && len(functions) == 0 {
		return nil, fmt.Errorf("fairassign: nothing to assign")
	}
	dims := 0
	if len(objects) > 0 {
		dims = len(objects[0].Attributes)
	} else {
		dims = len(functions[0].Weights)
	}
	p := &assign.Problem{Dims: dims}
	for _, o := range objects {
		p.Objects = append(p.Objects, assign.Object{
			ID:       o.ID,
			Point:    geom.Point(o.Attributes).Clone(),
			Capacity: o.Capacity,
		})
	}
	for _, f := range functions {
		w, err := prepareWeights(f, opts)
		if err != nil {
			return nil, err
		}
		p.Functions = append(p.Functions, assign.Function{
			ID:       f.ID,
			Weights:  w,
			Gamma:    f.Gamma,
			Capacity: f.Capacity,
		})
	}
	ws, err := assign.NewWorkspace(p, assign.Config{
		PageSize:         opts.PageSize,
		BufferFrac:       opts.BufferFraction,
		OmegaFrac:        opts.OmegaFraction,
		Workers:          opts.Workers,
		DisableNodeCache: opts.DisableNodeCache,
	})
	if err != nil {
		return nil, err
	}
	return &Workspace{ws: ws, opts: opts}, nil
}

// prepareWeights copies (and unless opted out, normalizes) a function's
// weight vector, mirroring NewSolver's validation.
func prepareWeights(f Function, opts Options) ([]float64, error) {
	w := make([]float64, len(f.Weights))
	copy(w, f.Weights)
	if !opts.SkipNormalization {
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return nil, fmt.Errorf("fairassign: function %d has negative weight", f.ID)
			}
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("fairassign: function %d has zero weights", f.ID)
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return w, nil
}

// Dims returns the workspace dimensionality.
func (w *Workspace) Dims() int { return w.ws.Dims() }

// AddObject introduces a new object; the matching is repaired in place.
func (w *Workspace) AddObject(o Object) error {
	return w.ws.AddObject(assign.Object{
		ID:       o.ID,
		Point:    geom.Point(o.Attributes).Clone(),
		Capacity: o.Capacity,
	})
}

// RemoveObject withdraws an object; functions holding it are reassigned
// along repair chains.
func (w *Workspace) RemoveObject(id uint64) error { return w.ws.RemoveObject(id) }

// AddFunction introduces a new preference function (normalized per the
// workspace Options); it claims its stable share of the objects via a
// displacement chain.
func (w *Workspace) AddFunction(f Function) error {
	weights, err := prepareWeights(f, w.opts)
	if err != nil {
		return err
	}
	return w.ws.AddFunction(assign.Function{
		ID:       f.ID,
		Weights:  weights,
		Gamma:    f.Gamma,
		Capacity: f.Capacity,
	})
}

// RemoveFunction withdraws a function; the object units it held are
// re-offered to the functions that want them most.
func (w *Workspace) RemoveFunction(id uint64) error { return w.ws.RemoveFunction(id) }

// Assignment returns the current stable matching in the definitional
// greedy order (descending score, ties by ascending IDs).
func (w *Workspace) Assignment() []Pair {
	pairs := w.ws.Pairs()
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{FunctionID: p.FuncID, ObjectID: p.ObjectID, Score: p.Score}
	}
	return out
}

// Stats returns a point-in-time summary of the workspace.
func (w *Workspace) Stats() WorkspaceStats {
	s := w.ws.Stats()
	return WorkspaceStats{
		Objects:           s.Objects,
		Functions:         s.Functions,
		AssignedUnits:     s.AssignedUnits,
		AvailableFrontier: s.SkylineSize,
		Mutations:         s.Mutations,
		ChainSteps:        s.ChainSteps,
		Searches:          s.Searches,
		Resolves:          s.Resolves,
		IOAccesses:        s.IO.Accesses(),
	}
}

// Verify checks that the current matching is stable for the current
// population — an audit hook mirroring Solver.Verify.
func (w *Workspace) Verify() error {
	return assign.IsStable(w.ws.Snapshot(), w.ws.Pairs())
}

// Close releases the page stores behind the workspace indexes. The
// workspace must not be used afterwards.
func (w *Workspace) Close() { w.ws.Close() }
