package fairassign

import (
	"fmt"
	"math"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
)

// Workspace is the long-lived, incremental counterpart of Solver. Where
// NewSolver(...).Solve() rebuilds the object index and search
// structures on every call, a Workspace builds them once and then
// *repairs* the stable matching in place as users and objects arrive or
// depart — the dynamic regime of a live serving system.
//
// Repair semantics versus Solve. After every mutation the workspace
// matching is exactly the matching Solve would produce on the current
// population (same pairs, scores equal to floating-point roundoff): a
// function arrival proposes down its preference order and displaces
// strictly worse assignments along a bounded chain; an object departure
// frees its holders, which re-chain; an object arrival or a function
// departure opens vacancies that pull the best wanting functions,
// cascading until no one benefits. Both sides rank every pair by the
// same score f(o), so the stable matching is unique and chain repair
// converges to it without a global recomputation. The skyline of
// objects with remaining capacity (the availability frontier) is
// maintained incrementally and prices every proposal: a displacement
// search only explores the index region that could beat the best freely
// available object.
//
// Concurrency. A Workspace follows a single-writer / many-readers
// contract: all methods are safe to call from any goroutine — an
// internal writer lock serializes mutations — and Snapshot returns a
// View pinned to the epoch published by the last mutation. Readers
// never block behind repairs and repairs never block behind readers:
// each mutation publishes a new epoch of the page store (copy-on-write
// against whatever open views still observe), and a view keeps
// answering from its epoch until it is Closed, at which point the page
// versions and cached nodes only that epoch kept alive are reclaimed.
// For write-throughput scaling, shard by tenant — one workspace each.
type Workspace struct {
	ws   *assign.Workspace
	opts Options
}

// Typed misuse errors returned by Workspace and View methods (match
// with errors.Is; returned errors carry the offending ID as context).
var (
	// ErrWorkspaceClosed is returned by every Workspace method called
	// after Close.
	ErrWorkspaceClosed = assign.ErrClosed
	// ErrViewClosed is returned by View query methods called after
	// View.Close.
	ErrViewClosed = assign.ErrViewClosed
	// ErrDuplicateID is returned by AddObject/AddFunction when an entity
	// with that ID is already live on the same side.
	ErrDuplicateID = assign.ErrDuplicateID
	// ErrUnknownID is returned by RemoveObject/RemoveFunction when no
	// live entity has the ID.
	ErrUnknownID = assign.ErrUnknownID
)

// WorkspaceStats summarizes a workspace and the repair work it has
// performed since construction.
type WorkspaceStats struct {
	// Population and matching size.
	Objects       int
	Functions     int
	AssignedUnits int
	// AvailableFrontier is the current size of the maintained skyline
	// over objects with spare capacity.
	AvailableFrontier int
	// Mutations counts applied mutations; Commits counts the epoch
	// publishes that carried them (group commits via Apply batch
	// mutations, so Commits <= Mutations+1); ChainSteps counts the
	// reassignments repair performed; Searches counts the bounded top-1
	// probes those chains issued. Resolves counts from-scratch solves
	// (always 1: the initial build).
	Mutations  int64
	Commits    int64
	ChainSteps int64
	Searches   int64
	Resolves   int64
	// IOAccesses is the paper's I/O metric accumulated over the
	// workspace lifetime (both indexes).
	IOAccesses int64
}

// NewWorkspace validates the inputs, builds the shared solver state,
// and computes the initial matching. Options are honored exactly as in
// NewSolver; the Algorithm field is ignored (the initial solve is SB,
// mutations use chain repair).
func NewWorkspace(objects []Object, functions []Function, opts Options) (*Workspace, error) {
	if len(objects) == 0 && len(functions) == 0 {
		return nil, fmt.Errorf("fairassign: nothing to assign")
	}
	dims := problemDims(objects, functions)
	if dims == 0 {
		return nil, fmt.Errorf("fairassign: cannot derive dimensionality (no objects and no function carries explicit weights)")
	}
	p := &assign.Problem{Dims: dims}
	for _, o := range objects {
		p.Objects = append(p.Objects, assign.Object{
			ID:       o.ID,
			Point:    geom.Point(o.Attributes).Clone(),
			Capacity: o.Capacity,
		})
	}
	for _, f := range functions {
		af, err := resolveFunction(f, opts, dims)
		if err != nil {
			return nil, err
		}
		p.Functions = append(p.Functions, af)
	}
	ws, err := assign.NewWorkspace(p, opts.assignConfig())
	if err != nil {
		return nil, err
	}
	return &Workspace{ws: ws, opts: opts}, nil
}

// WeightNormalizationTolerance is the slack within which a weight
// vector counts as already normalized: when |Σw − 1| is at most this
// value, prepareWeights leaves the weights bit-exact instead of
// dividing by the sum. The tolerance exists so that weights produced by
// a prior normalization (whose float64 sum can land a few ULPs off 1)
// round-trip unchanged through NewSolver, NewWorkspace, and the CSV
// loaders; sums farther from 1 are rescaled. The boundary is tested in
// both directions.
const WeightNormalizationTolerance = 1e-12

// prepareWeights copies (and unless opted out, normalizes) a function's
// weight vector, mirroring NewSolver's validation. Non-finite weights
// are rejected for every family (they would poison score arithmetic and
// the index structures); negative and all-zero vectors are rejected
// unless normalization is skipped. Errors wrap ErrBadWeight.
func prepareWeights(f Function, opts Options) ([]float64, error) {
	w := make([]float64, len(f.Weights))
	copy(w, f.Weights)
	return normalizeWeights(w, f.ID, opts)
}

// normalizeWeights validates and (within tolerance) normalizes a weight
// vector in place.
func normalizeWeights(w []float64, fid uint64, opts Options) ([]float64, error) {
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: function %d has non-finite weight", ErrBadWeight, fid)
		}
	}
	if !opts.SkipNormalization {
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return nil, fmt.Errorf("%w: function %d has negative weight", ErrBadWeight, fid)
			}
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("%w: function %d has zero weights", ErrBadWeight, fid)
		}
		if math.Abs(sum-1) > WeightNormalizationTolerance {
			for i := range w {
				w[i] /= sum
			}
		}
	}
	return w, nil
}

// Dims returns the workspace dimensionality.
func (w *Workspace) Dims() int { return w.ws.Dims() }

// AddObject introduces a new object; the matching is repaired in place.
func (w *Workspace) AddObject(o Object) error {
	return w.ws.AddObject(assign.Object{
		ID:       o.ID,
		Point:    geom.Point(o.Attributes).Clone(),
		Capacity: o.Capacity,
	})
}

// RemoveObject withdraws an object; functions holding it are reassigned
// along repair chains.
func (w *Workspace) RemoveObject(id uint64) error { return w.ws.RemoveObject(id) }

// AddFunction introduces a new preference function (normalized per the
// workspace Options, under any scorer family); it claims its stable
// share of the objects via a displacement chain.
func (w *Workspace) AddFunction(f Function) error {
	af, err := resolveFunction(f, w.opts, w.Dims())
	if err != nil {
		return err
	}
	return w.ws.AddFunction(af)
}

// RemoveFunction withdraws a function; the object units it held are
// re-offered to the functions that want them most.
func (w *Workspace) RemoveFunction(id uint64) error { return w.ws.RemoveFunction(id) }

// pairsFromInternal converts internal pairs to the public form; the
// single site keeping live and snapshot accessors field-for-field
// identical.
func pairsFromInternal(pairs []assign.Pair) []Pair {
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{FunctionID: p.FuncID, ObjectID: p.ObjectID, Score: p.Score}
	}
	return out
}

// statsFromInternal maps the internal summary to the public one.
func statsFromInternal(s assign.WorkspaceStats) WorkspaceStats {
	return WorkspaceStats{
		Objects:           s.Objects,
		Functions:         s.Functions,
		AssignedUnits:     s.AssignedUnits,
		AvailableFrontier: s.SkylineSize,
		Mutations:         s.Mutations,
		Commits:           s.Commits,
		ChainSteps:        s.ChainSteps,
		Searches:          s.Searches,
		Resolves:          s.Resolves,
		IOAccesses:        s.IO.Accesses(),
	}
}

// Assignment returns the current stable matching in the definitional
// greedy order (descending score, ties by ascending IDs).
func (w *Workspace) Assignment() []Pair { return pairsFromInternal(w.ws.Pairs()) }

// Stats returns a point-in-time summary of the workspace.
func (w *Workspace) Stats() WorkspaceStats { return statsFromInternal(w.ws.Stats()) }

// Verify checks that the current matching is stable for the current
// population — an audit hook mirroring Solver.Verify.
func (w *Workspace) Verify() error {
	return w.ws.VerifyStable()
}

// Close releases the page stores behind the workspace indexes. The
// workspace must not be used afterwards.
func (w *Workspace) Close() { w.ws.Close() }

// Snapshot returns a read-only View pinned to the workspace's latest
// published epoch. The view's answers are immune to later mutations: a
// snapshot taken before a batch of Add/Remove calls returns the same
// Assignment, Stats, and TopK results after the batch lands, while a
// fresh Snapshot reflects it. Any number of views may be open
// concurrently, across goroutines, at the same or different epochs;
// each must be Closed to release the page versions its epoch retains.
func (w *Workspace) Snapshot() (*View, error) {
	v, err := w.ws.Snapshot()
	if err != nil {
		return nil, err
	}
	return &View{v: v, opts: w.opts}, nil
}

// View is a snapshot-isolated read handle on a Workspace: a consistent,
// immutable observation of the matching, the population, and the object
// index at one epoch. All methods are safe for concurrent use, keep
// working while the workspace mutates (and even after it is closed),
// and never touch the writer's I/O accounting. Close releases the
// epoch; query methods on a closed view fail with ErrViewClosed (or
// return empty results where no error channel exists).
type View struct {
	v    *assign.View
	opts Options
}

// Epoch returns the published workspace epoch this view observes. One
// epoch is published at construction and one per mutation, so the
// epoch also identifies which prefix of the mutation history the view
// reflects.
func (v *View) Epoch() uint64 { return v.v.Epoch() }

// Dims returns the problem dimensionality.
func (v *View) Dims() int { return v.v.Dims() }

// Close releases the view's epoch pin. Idempotent and safe to call
// concurrently with in-flight reads on other views.
func (v *View) Close() { v.v.Close() }

// Assignment returns the frozen stable matching in the definitional
// greedy order (descending score, ties by ascending IDs). The slice is
// freshly allocated and owned by the caller.
func (v *View) Assignment() []Pair { return pairsFromInternal(v.v.Pairs()) }

// AssignmentOf returns the frozen assignments of one function, best
// first. The slice is freshly allocated and owned by the caller.
func (v *View) AssignmentOf(functionID uint64) []Pair {
	return pairsFromInternal(v.v.PairsOf(functionID))
}

// Stats returns the workspace summary as it stood at the view's epoch.
func (v *View) Stats() WorkspaceStats { return statsFromInternal(v.v.Stats()) }

// Verify checks that the frozen matching is stable for the frozen
// population — the audit hook of Solver and Workspace, answered
// entirely from the snapshot.
func (v *View) Verify() error { return v.v.VerifyStable() }

// TopK returns the k objects the given preference function ranks
// highest among the view's frozen object set — the paper's single-user
// query (Section 2.3), evaluated with BRS over the pinned index epoch
// under the function's scorer family. Weights are normalized per the
// workspace Options and scaled by the function's Gamma, exactly as an
// assignment would score them.
func (v *View) TopK(f Function, k int) ([]Ranked, error) {
	if k <= 0 {
		return nil, nil
	}
	af, err := resolveFunction(f, v.opts, v.Dims())
	if err != nil {
		return nil, err
	}
	if len(af.Weights) != v.Dims() {
		return nil, fmt.Errorf("fairassign: function has %d weights, view has %d dims", len(af.Weights), v.Dims())
	}
	items, scores, err := v.v.TopKScorer(af.Scorer(), k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(items))
	for i, it := range items {
		obj, ok := v.v.Object(it.ID)
		if !ok {
			return nil, fmt.Errorf("fairassign: view index returned unknown object %d", it.ID)
		}
		attrs := make([]float64, len(obj.Point))
		copy(attrs, obj.Point)
		out[i] = Ranked{
			Object: Object{ID: obj.ID, Attributes: attrs, Capacity: obj.Capacity},
			Score:  scores[i],
		}
	}
	return out, nil
}
