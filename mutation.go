package fairassign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
)

// Typed errors for the mutation paths (match with errors.Is).
var (
	// ErrBadAttribute is returned when an object carries a NaN or ±Inf
	// attribute — the same rule the CSV loader enforces; non-finite
	// coordinates would silently corrupt the R-tree MBRs and TA bounds.
	ErrBadAttribute = assign.ErrBadPoint
	// ErrBadCapacity is returned for a negative object or function
	// capacity (zero still means "default of 1", as everywhere else).
	ErrBadCapacity = assign.ErrBadCapacity
	// ErrBadGamma is returned for a NaN or ±Inf priority.
	ErrBadGamma = assign.ErrBadGamma
	// ErrBadMutation is returned by Apply for a zero-value Mutation (one
	// not built by the *Op constructors).
	ErrBadMutation = assign.ErrBadMutation
	// ErrWorkspaceCorrupt is returned by every Workspace method after a
	// mutation failed mid-structure (for example an injected disk error
	// during an index insert). The workspace poisons itself rather than
	// serve from inconsistent indexes; previously opened Views keep
	// answering from their pinned epochs. Errors wrap both this sentinel
	// and the original cause.
	ErrWorkspaceCorrupt = assign.ErrCorrupt
	// ErrQueueClosed is returned by MutationQueue.Enqueue after Close.
	ErrQueueClosed = errors.New("fairassign: mutation queue closed")
)

// Mutation is one population change for Workspace.Apply — construct
// with AddObjectOp, RemoveObjectOp, AddFunctionOp, or RemoveFunctionOp.
// The zero value is invalid.
type Mutation struct {
	kind assign.MutationKind
	obj  Object
	fn   Function
	id   uint64
}

// AddObjectOp returns a mutation that introduces a new object.
func AddObjectOp(o Object) Mutation {
	return Mutation{kind: assign.MutAddObject, obj: o}
}

// RemoveObjectOp returns a mutation that withdraws the object with the
// given ID.
func RemoveObjectOp(id uint64) Mutation {
	return Mutation{kind: assign.MutRemoveObject, id: id}
}

// AddFunctionOp returns a mutation that introduces a new preference
// function (normalized per the workspace Options, under any scorer
// family).
func AddFunctionOp(f Function) Mutation {
	return Mutation{kind: assign.MutAddFunction, fn: f}
}

// RemoveFunctionOp returns a mutation that withdraws the function with
// the given ID.
func RemoveFunctionOp(id uint64) Mutation {
	return Mutation{kind: assign.MutRemoveFunction, id: id}
}

// String describes the mutation for logs and error messages.
func (m Mutation) String() string {
	switch m.kind {
	case assign.MutAddObject:
		return fmt.Sprintf("add-object %d", m.obj.ID)
	case assign.MutRemoveObject:
		return fmt.Sprintf("remove-object %d", m.id)
	case assign.MutAddFunction:
		return fmt.Sprintf("add-function %d", m.fn.ID)
	case assign.MutRemoveFunction:
		return fmt.Sprintf("remove-function %d", m.id)
	}
	return "invalid mutation"
}

// internal translates the public mutation to the engine's form,
// resolving scorer families and normalizing weights exactly as the
// single-mutation methods do.
func (m Mutation) internal(opts Options, dims int) (assign.Mutation, error) {
	switch m.kind {
	case assign.MutAddObject:
		return assign.Mutation{Kind: assign.MutAddObject, Object: assign.Object{
			ID:       m.obj.ID,
			Point:    geom.Point(m.obj.Attributes).Clone(),
			Capacity: m.obj.Capacity,
		}}, nil
	case assign.MutRemoveObject:
		return assign.Mutation{Kind: assign.MutRemoveObject, ID: m.id}, nil
	case assign.MutAddFunction:
		af, err := resolveFunction(m.fn, opts, dims)
		if err != nil {
			return assign.Mutation{}, err
		}
		return assign.Mutation{Kind: assign.MutAddFunction, Function: af}, nil
	case assign.MutRemoveFunction:
		return assign.Mutation{Kind: assign.MutRemoveFunction, ID: m.id}, nil
	}
	return assign.Mutation{}, ErrBadMutation
}

// Apply applies a batch of mutations as one group commit: the whole
// batch is validated first against sequential semantics (each mutation
// sees the population as left by the ones before it), then each
// mutation is applied and chain-repaired in order, and the result is
// published as a single epoch. The matching is identical to applying
// the same mutations one at a time — the state transitions are the
// same — but the batch publishes one epoch instead of one per
// mutation. That is the throughput lever under read traffic: every
// observed epoch costs its first reader an O(population) snapshot
// capture (and the store a flush and version publish), so per-mutation
// commits make a served workspace pay that per mutation, a batch once.
//
// Atomicity: if any mutation fails validation (bad attribute, duplicate
// or unknown ID, bad weights...), the error identifies its index and
// NO mutation is applied — the workspace is untouched and stays fully
// usable. If a structural failure occurs mid-application (for example
// a disk error from the backing store), the workspace poisons itself
// with ErrWorkspaceCorrupt; open snapshots keep serving their epochs.
//
// An empty batch is a no-op. Apply follows the workspace's
// single-writer contract and may be called from any goroutine.
func (w *Workspace) Apply(muts []Mutation) error {
	ims := make([]assign.Mutation, len(muts))
	dims := w.Dims()
	for i := range muts {
		im, err := muts[i].internal(w.opts, dims)
		if err != nil {
			return fmt.Errorf("fairassign: mutation %d (%s): %w", i, muts[i].String(), err)
		}
		ims[i] = im
	}
	return w.ws.Apply(ims)
}

// queued is one enqueued mutation with its completion channel.
type queued struct {
	m    Mutation
	errc chan error
}

// Applier is the commit target of a MutationQueue: anything that lands
// a batch of mutations as one group commit with Workspace.Apply's
// atomicity contract. Both *Workspace and *ShardedWorkspace satisfy it,
// so the same queue front end serves the single-writer and the sharded
// tiers.
type Applier interface {
	Apply(muts []Mutation) error
}

// MutationQueue is an asynchronous group-commit front end for a
// Workspace writer. Producers Enqueue mutations from any goroutine; a
// single pump goroutine drains whatever has accumulated — up to
// MaxBatch — into one Workspace.Apply call, so concurrent writers
// share epoch publishes instead of paying one each. Under light load a
// mutation commits alone with no added latency; under bursts the batch
// size grows toward MaxBatch and the per-mutation commit cost is
// amortized away.
//
// Failure semantics: if a batch fails validation, the queue retries the
// mutations one at a time so one bad mutation cannot reject its
// innocent batch-mates — each waiter receives its own verdict. If the
// workspace poisons (ErrWorkspaceCorrupt), every in-flight and
// subsequent mutation fails with that error.
type MutationQueue struct {
	ws        Applier
	maxBatch  int
	retries   int
	backoff   time.Duration
	ch        chan queued
	pumpDone  chan struct{}
	closing   sync.RWMutex
	closed    bool
	mutations atomic.Int64
	batches   atomic.Int64
	retried   atomic.Int64
	dropped   atomic.Int64
}

// DefaultMaxBatch is the group-commit batch cap used when
// NewMutationQueue is given maxBatch <= 0.
const DefaultMaxBatch = 128

// QueueOptions configures a MutationQueue. The zero value means
// DefaultMaxBatch, one individual attempt per mutation after a failed
// batch, and no backoff — the same behavior as NewMutationQueue.
type QueueOptions struct {
	// MaxBatch caps the number of mutations coalesced into one commit
	// (<= 0 means DefaultMaxBatch).
	MaxBatch int
	// MaxRetries bounds the individual Apply attempts per mutation when
	// its group commit fails (<= 0 means 1: each batch-mate is tried
	// once on its own, never re-tried). Attempts past the first only
	// help when failures are transient; deterministic validation errors
	// fail every attempt and are simply delayed by the backoff.
	MaxRetries int
	// RetryBackoff is the sleep between successive attempts of the same
	// mutation. The pump sleeps, so backoff delays everything queued
	// behind the failing mutation — keep it small.
	RetryBackoff time.Duration
}

// NewMutationQueue starts the pump over the given workspace. maxBatch
// caps the number of mutations coalesced into one commit (<= 0 means
// DefaultMaxBatch). The queue does not own the workspace: Close stops
// the pump but leaves the workspace open.
func NewMutationQueue(ws Applier, maxBatch int) *MutationQueue {
	return NewMutationQueueOpts(ws, QueueOptions{MaxBatch: maxBatch})
}

// NewMutationQueueOpts starts the pump with explicit retry and backoff
// policy; see QueueOptions.
func NewMutationQueueOpts(ws Applier, qo QueueOptions) *MutationQueue {
	mq := newMutationQueue(ws, qo)
	go mq.pump()
	return mq
}

// newMutationQueue builds the queue without starting the pump; tests
// use it to pre-load the channel and observe deterministic coalescing.
func newMutationQueue(ws Applier, qo QueueOptions) *MutationQueue {
	if qo.MaxBatch <= 0 {
		qo.MaxBatch = DefaultMaxBatch
	}
	if qo.MaxRetries <= 0 {
		qo.MaxRetries = 1
	}
	return &MutationQueue{
		ws:       ws,
		maxBatch: qo.MaxBatch,
		retries:  qo.MaxRetries,
		backoff:  qo.RetryBackoff,
		ch:       make(chan queued, 4*qo.MaxBatch),
		pumpDone: make(chan struct{}),
	}
}

// Enqueue submits one mutation and returns a 1-buffered channel that
// receives its verdict once the mutation's group commit (or individual
// retry) lands. Callers may fire-and-forget or select on the channel;
// it is never closed without a value. Safe for concurrent use.
func (mq *MutationQueue) Enqueue(m Mutation) <-chan error {
	errc := make(chan error, 1)
	mq.closing.RLock()
	defer mq.closing.RUnlock()
	if mq.closed {
		errc <- ErrQueueClosed
		return errc
	}
	mq.ch <- queued{m: m, errc: errc}
	return errc
}

// EnqueueCtx submits one mutation and blocks until its group commit
// (or individual retry) lands, the queue is closed, or ctx is done. A
// ctx expiry while still waiting for queue admission abandons the
// mutation — it will never commit, and counts as Dropped in Stats. An
// expiry after admission only abandons the wait: the mutation is
// already owned by the pump and still commits (or fails) normally.
// Safe for concurrent use.
func (mq *MutationQueue) EnqueueCtx(ctx context.Context, m Mutation) error {
	if err := ctx.Err(); err != nil {
		mq.dropped.Add(1)
		return err
	}
	errc := make(chan error, 1)
	mq.closing.RLock()
	if mq.closed {
		mq.closing.RUnlock()
		return ErrQueueClosed
	}
	select {
	case mq.ch <- queued{m: m, errc: errc}:
		mq.closing.RUnlock()
	case <-ctx.Done():
		mq.closing.RUnlock()
		mq.dropped.Add(1)
		return ctx.Err()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting new mutations, waits for everything already
// enqueued to commit, and stops the pump. Idempotent.
func (mq *MutationQueue) Close() {
	mq.closing.Lock()
	already := mq.closed
	mq.closed = true
	mq.closing.Unlock()
	if already {
		<-mq.pumpDone
		return
	}
	close(mq.ch)
	<-mq.pumpDone
}

// QueueStats reports the pump's coalescing behavior.
type QueueStats struct {
	// Mutations is the number of mutations committed (or individually
	// rejected) so far; Batches is the number of Apply calls that
	// carried them. Mutations/Batches is the achieved group-commit
	// factor.
	Mutations int64
	Batches   int64
	// Retries counts individual Apply attempts beyond each mutation's
	// first (only possible with QueueOptions.MaxRetries > 1); Dropped
	// counts mutations abandoned by EnqueueCtx before queue admission.
	Retries int64
	Dropped int64
}

// Stats returns a point-in-time snapshot of the queue counters.
func (mq *MutationQueue) Stats() QueueStats {
	return QueueStats{
		Mutations: mq.mutations.Load(),
		Batches:   mq.batches.Load(),
		Retries:   mq.retried.Load(),
		Dropped:   mq.dropped.Load(),
	}
}

// pump is the single consumer: block for one mutation, opportunistically
// drain up to maxBatch-1 more without blocking, commit as one batch.
func (mq *MutationQueue) pump() {
	defer close(mq.pumpDone)
	for first := range mq.ch {
		batch := make([]queued, 1, mq.maxBatch)
		batch[0] = first
	drain:
		for len(batch) < mq.maxBatch {
			select {
			case q, ok := <-mq.ch:
				if !ok {
					break drain
				}
				batch = append(batch, q)
			default:
				break drain
			}
		}
		mq.commit(batch)
	}
}

// commit lands one batch and distributes verdicts to the waiters.
func (mq *MutationQueue) commit(batch []queued) {
	muts := make([]Mutation, len(batch))
	for i, q := range batch {
		muts[i] = q.m
	}
	err := mq.ws.Apply(muts)
	mq.mutations.Add(int64(len(batch)))
	switch {
	case err == nil:
		mq.batches.Add(1)
		for _, q := range batch {
			q.errc <- nil
		}
	case len(batch) == 1 || errors.Is(err, ErrWorkspaceCorrupt):
		mq.batches.Add(1)
		for _, q := range batch {
			q.errc <- err
		}
	default:
		// A validation error rejected the whole batch atomically; retry
		// individually so only the offending mutations fail. Each
		// mutation gets up to maxRetries attempts with backoff between
		// them; corruption is fatal and never re-tried.
		for _, q := range batch {
			var err error
			for attempt := 0; attempt < mq.retries; attempt++ {
				if attempt > 0 {
					mq.retried.Add(1)
					if mq.backoff > 0 {
						time.Sleep(mq.backoff)
					}
				}
				mq.batches.Add(1)
				err = mq.ws.Apply([]Mutation{q.m})
				if err == nil || errors.Is(err, ErrWorkspaceCorrupt) {
					break
				}
			}
			q.errc <- err
		}
	}
}
