package fairassign

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"strconv"
)

// parseFinite parses a float cell, rejecting NaN and ±Inf: the solver's
// score arithmetic, normalization, and index structures all assume finite
// inputs, so non-finite values are input errors, not data.
func parseFinite(cell string) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", cell)
	}
	return v, nil
}

// LoadObjectsCSV reads objects from a headerless CSV file with rows of
// the form id,attr1,...,attrD[,capacity]. Whether the trailing column is
// a capacity is inferred from the first row's width against the second
// row; files must be rectangular. A one-line header starting with a
// non-numeric id cell is skipped.
func LoadObjectsCSV(path string) ([]Object, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	var out []Object
	for i, row := range rows {
		if len(row) < 2 {
			return nil, fmt.Errorf("fairassign: %s row %d: need id plus at least one attribute", path, i+1)
		}
		id, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("fairassign: %s row %d: bad id %q", path, i+1, row[0])
		}
		attrs := make([]float64, 0, len(row)-1)
		for _, cell := range row[1:] {
			v, err := parseFinite(cell)
			if err != nil {
				return nil, fmt.Errorf("fairassign: %s row %d: bad value %q", path, i+1, cell)
			}
			attrs = append(attrs, v)
		}
		out = append(out, Object{ID: id, Attributes: attrs})
	}
	return out, nil
}

// LoadFunctionsCSV reads preference functions from a headerless CSV file
// with rows of the form id[,kind],w1,...,wD. Use LoadFunctionsCSVExt for
// files carrying gamma and capacity columns.
func LoadFunctionsCSV(path string) ([]Function, error) {
	return LoadFunctionsCSVExt(path, 0)
}

// LoadFunctionsCSVExt reads functions from rows of the form
// id[,kind],w1,...,wD followed by `extras` trailing columns interpreted
// in order as gamma then capacity (extras in 0..2).
//
// The optional kind cell selects the scoring family —
// linear|owa|minimax|best|median|chebyshev|lp:<p>, default linear — and
// is detected by not parsing as a number, so plain weight files load
// unchanged. Weight cells must be finite and non-negative for every
// family (OWA position weights included); violations fail with errors
// wrapping ErrBadWeight, and unknown kind names with ErrBadScorerKind.
func LoadFunctionsCSVExt(path string, extras int) ([]Function, error) {
	if extras < 0 || extras > 2 {
		return nil, fmt.Errorf("fairassign: extras must be 0..2, got %d", extras)
	}
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	var out []Function
	for i, row := range rows {
		if len(row) < 2+extras {
			return nil, fmt.Errorf("fairassign: %s row %d: too few columns", path, i+1)
		}
		id, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("fairassign: %s row %d: bad id %q", path, i+1, row[0])
		}
		weightStart := 1
		var sc *Scorer
		if _, ferr := strconv.ParseFloat(row[1], 64); ferr != nil {
			sc, err = ParseScorerKind(row[1])
			if err != nil {
				return nil, fmt.Errorf("fairassign: %s row %d: %w", path, i+1, err)
			}
			weightStart = 2
		}
		if len(row)-extras < weightStart {
			return nil, fmt.Errorf("fairassign: %s row %d: too few columns", path, i+1)
		}
		weightCells := row[weightStart : len(row)-extras]
		w := make([]float64, 0, len(weightCells))
		for _, cell := range weightCells {
			v, err := parseFinite(cell)
			if err != nil {
				return nil, fmt.Errorf("fairassign: %s row %d: %w: %q", path, i+1, ErrBadWeight, cell)
			}
			if v < 0 {
				return nil, fmt.Errorf("fairassign: %s row %d: %w: negative weight %q", path, i+1, ErrBadWeight, cell)
			}
			w = append(w, v)
		}
		f := Function{ID: id, Weights: w, Scorer: sc}
		if extras >= 1 {
			g, err := parseFinite(row[len(row)-extras])
			if err != nil {
				return nil, fmt.Errorf("fairassign: %s row %d: bad gamma", path, i+1)
			}
			f.Gamma = g
		}
		if extras == 2 {
			c, err := strconv.Atoi(row[len(row)-1])
			if err != nil {
				return nil, fmt.Errorf("fairassign: %s row %d: bad capacity", path, i+1)
			}
			f.Capacity = c
		}
		out = append(out, f)
	}
	return out, nil
}

// SaveObjectsCSV writes objects as id,attr1,...,attrD rows.
func SaveObjectsCSV(path string, objects []Object) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fairassign: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, o := range objects {
		row := make([]string, 0, len(o.Attributes)+1)
		row = append(row, strconv.FormatUint(o.ID, 10))
		for _, v := range o.Attributes {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return fmt.Errorf("fairassign: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("fairassign: %w", err)
	}
	return f.Close()
}

// SaveFunctionsCSV writes functions as id[,kind],w1,...,wD rows; the
// kind cell is emitted only for functions with a non-nil Scorer, so
// purely linear sets round-trip through the historical format.
func SaveFunctionsCSV(path string, functions []Function) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fairassign: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, fn := range functions {
		row := make([]string, 0, len(fn.Weights)+2)
		row = append(row, strconv.FormatUint(fn.ID, 10))
		weights := fn.Weights
		if fn.Scorer != nil {
			row = append(row, fn.Scorer.String())
			// Scorer-carried weights win at solve time
			// (resolveFunction), so they win here too — otherwise the
			// round-trip would change the function.
			if len(fn.Scorer.weights) > 0 {
				weights = fn.Scorer.weights
			}
		}
		for _, v := range weights {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return fmt.Errorf("fairassign: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("fairassign: %w", err)
	}
	return f.Close()
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fairassign: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("fairassign: %s: %w", path, err)
	}
	return rows, nil
}
