package fairassign

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// applyWorkspace builds a small workspace for the Apply/queue tests.
func applyWorkspace(t *testing.T) *Workspace {
	t.Helper()
	objects := GenerateObjects(Independent, 60, 2, 11)
	functions := GenerateFunctions(10, 2, 12)
	ws, err := NewWorkspace(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ws.Close)
	return ws
}

// TestApplyMatchesSequential applies the same mutations batched and one
// at a time on twin workspaces and asserts identical matchings plus the
// group-commit counter contract.
func TestApplyMatchesSequential(t *testing.T) {
	batched := applyWorkspace(t)
	seq := applyWorkspace(t)

	muts := []Mutation{
		AddObjectOp(Object{ID: 1000, Attributes: []float64{0.95, 0.9}}),
		AddFunctionOp(Function{ID: 1000, Weights: []float64{2, 1}}), // normalized like the sequential path
		RemoveObjectOp(3),
		AddObjectOp(Object{ID: 1001, Attributes: []float64{0.1, 0.97}, Capacity: 2}),
		RemoveFunctionOp(4),
	}
	if err := batched.Apply(muts); err != nil {
		t.Fatal(err)
	}
	for i, m := range muts {
		if err := seq.Apply([]Mutation{m}); err != nil {
			t.Fatalf("sequential mutation %d: %v", i, err)
		}
	}
	sameAssignment(t, "batched vs sequential", batched.Assignment(), seq.Assignment())
	if err := batched.Verify(); err != nil {
		t.Fatal(err)
	}
	bs, ss := batched.Stats(), seq.Stats()
	if bs.Mutations != ss.Mutations {
		t.Fatalf("Mutations: batched %d, sequential %d", bs.Mutations, ss.Mutations)
	}
	if bs.Commits >= ss.Commits {
		t.Fatalf("group commit did not coalesce: batched %d commits, sequential %d", bs.Commits, ss.Commits)
	}
}

// TestApplyValidationAtomic asserts a bad mutation anywhere in the batch
// rejects the whole batch with a typed error and no state change.
func TestApplyValidationAtomic(t *testing.T) {
	ws := applyWorkspace(t)
	want := ws.Assignment()

	cases := []struct {
		name string
		err  error
		muts []Mutation
	}{
		{"nan attribute", ErrBadAttribute, []Mutation{
			RemoveObjectOp(1),
			AddObjectOp(Object{ID: 2000, Attributes: []float64{math.NaN(), 0.5}}),
		}},
		{"negative capacity", ErrBadCapacity, []Mutation{
			AddObjectOp(Object{ID: 2000, Attributes: []float64{0.5, 0.5}, Capacity: -1}),
		}},
		{"bad weight", ErrBadWeight, []Mutation{
			AddFunctionOp(Function{ID: 2000, Weights: []float64{-1, 2}}),
		}},
		{"zero mutation", ErrBadMutation, []Mutation{{}}},
		{"duplicate in batch", ErrDuplicateID, []Mutation{
			AddObjectOp(Object{ID: 2001, Attributes: []float64{0.5, 0.5}}),
			AddObjectOp(Object{ID: 2001, Attributes: []float64{0.6, 0.6}}),
		}},
		{"unknown id", ErrUnknownID, []Mutation{RemoveFunctionOp(999)}},
	}
	for _, tc := range cases {
		err := ws.Apply(tc.muts)
		if !errors.Is(err, tc.err) {
			t.Fatalf("%s: error = %v, want %v", tc.name, err, tc.err)
		}
		sameAssignment(t, tc.name, ws.Assignment(), want)
	}
	if err := ws.Apply([]Mutation{AddObjectOp(Object{ID: 2002, Attributes: []float64{0.5, 0.5}})}); err != nil {
		t.Fatalf("valid batch after rejections: %v", err)
	}
}

// TestMutationQueueGroupCommit floods the queue from many goroutines
// and asserts every mutation lands, the result matches a from-scratch
// solve, and the pump actually coalesced batches.
func TestMutationQueueGroupCommit(t *testing.T) {
	ws := applyWorkspace(t)

	// Pre-load the whole burst before starting the pump (the channel
	// holds 4*maxBatch = 256), so the coalescing is deterministic:
	// ceil(200/64) batches instead of a scheduling-dependent count.
	q := newMutationQueue(ws, QueueOptions{MaxBatch: 64})
	const n = 200
	var wg sync.WaitGroup
	errs := make([]<-chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = q.Enqueue(AddObjectOp(Object{
				ID:         uint64(5000 + i),
				Attributes: []float64{float64(i%37) / 37, float64(i%17) / 17},
			}))
		}()
	}
	wg.Wait()
	go q.pump()
	for i, c := range errs {
		if err := <-c; err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	q.Close()

	st := ws.Stats()
	if st.Objects != 60+n {
		t.Fatalf("Objects = %d, want %d", st.Objects, 60+n)
	}
	qs := q.Stats()
	if qs.Mutations != n {
		t.Fatalf("queue Mutations = %d, want %d", qs.Mutations, n)
	}
	if qs.Batches > (n+63)/64 {
		t.Fatalf("queue under-coalesced: %d batches for %d pre-loaded mutations, want <= %d", qs.Batches, qs.Mutations, (n+63)/64)
	}
	if err := ws.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := <-q.Enqueue(RemoveObjectOp(5000)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrQueueClosed", err)
	}
	q.Close() // idempotent
}

// TestMutationQueueIsolatesBadMutations asserts a failing mutation in a
// coalesced batch does not reject its batch-mates: the queue retries
// individually and only the bad mutation reports an error.
func TestMutationQueueIsolatesBadMutations(t *testing.T) {
	ws := applyWorkspace(t)
	q := NewMutationQueue(ws, 64)
	defer q.Close()

	// Enqueue back-to-back so the pump coalesces them into one batch:
	// good, bad, good.
	c1 := q.Enqueue(AddObjectOp(Object{ID: 6000, Attributes: []float64{0.5, 0.5}}))
	c2 := q.Enqueue(AddObjectOp(Object{ID: 6001, Attributes: []float64{math.Inf(1), 0.5}}))
	c3 := q.Enqueue(AddObjectOp(Object{ID: 6002, Attributes: []float64{0.6, 0.6}}))

	if err := <-c1; err != nil {
		t.Fatalf("first good mutation: %v", err)
	}
	if err := <-c2; !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("bad mutation error = %v, want ErrBadAttribute", err)
	}
	if err := <-c3; err != nil {
		t.Fatalf("second good mutation: %v", err)
	}
	st := ws.Stats()
	if st.Objects != 62 {
		t.Fatalf("Objects = %d, want 62 (both good mutations landed)", st.Objects)
	}
	if err := ws.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEnqueueCtx covers the context-aware submission path: a live
// context commits synchronously, a canceled context before admission
// drops the mutation and counts it, and Close still yields
// ErrQueueClosed.
func TestEnqueueCtx(t *testing.T) {
	ws := applyWorkspace(t)
	q := NewMutationQueue(ws, 64)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.EnqueueCtx(ctx, AddObjectOp(Object{ID: 7000, Attributes: []float64{0.5, 0.5}})); err != nil {
		t.Fatalf("EnqueueCtx: %v", err)
	}
	if err := q.EnqueueCtx(ctx, AddObjectOp(Object{ID: 7000, Attributes: []float64{0.5, 0.5}})); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate EnqueueCtx error = %v, want ErrDuplicateID", err)
	}
	if ws.Stats().Objects != 61 {
		t.Fatalf("Objects = %d, want 61", ws.Stats().Objects)
	}

	// An already-expired context never admits the mutation.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if err := q.EnqueueCtx(dead, AddObjectOp(Object{ID: 7001, Attributes: []float64{0.4, 0.4}})); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired EnqueueCtx error = %v, want context.Canceled", err)
	}
	qs := q.Stats()
	if qs.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", qs.Dropped)
	}
	if ws.Stats().Objects != 61 {
		t.Fatalf("dropped mutation landed: Objects = %d, want 61", ws.Stats().Objects)
	}

	q.Close()
	if err := q.EnqueueCtx(ctx, RemoveObjectOp(7000)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("EnqueueCtx after Close = %v, want ErrQueueClosed", err)
	}
}

// TestEnqueueCtxExpiredSend asserts a blocked sender gives up when its
// context expires while the channel is full (pump not started), and
// that the abandoned mutation never commits.
func TestEnqueueCtxExpiredSend(t *testing.T) {
	ws := applyWorkspace(t)
	q := newMutationQueue(ws, QueueOptions{MaxBatch: 1}) // channel capacity 4, pump never started
	for i := 0; i < 4; i++ {
		q.Enqueue(AddObjectOp(Object{ID: uint64(7100 + i), Attributes: []float64{0.5, 0.5}}))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.EnqueueCtx(ctx, AddObjectOp(Object{ID: 7200, Attributes: []float64{0.5, 0.5}})); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full-queue EnqueueCtx error = %v, want context.DeadlineExceeded", err)
	}
	if got := q.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	go q.pump()
	q.Close()
	if got := ws.Stats().Objects; got != 64 {
		t.Fatalf("Objects = %d, want 64 (4 queued landed, dropped one did not)", got)
	}
}

// TestQueueRetryPolicy asserts the bounded-retry path: a deterministic
// validation failure inside a coalesced batch is attempted MaxRetries
// times with backoff and each extra attempt is counted, while the
// batch-mates commit on their first individual attempt with no retry.
func TestQueueRetryPolicy(t *testing.T) {
	ws := applyWorkspace(t)
	q := newMutationQueue(ws, QueueOptions{MaxBatch: 64, MaxRetries: 3, RetryBackoff: time.Millisecond})
	good1 := q.Enqueue(AddObjectOp(Object{ID: 7300, Attributes: []float64{0.5, 0.5}}))
	bad := q.Enqueue(AddObjectOp(Object{ID: 7301, Attributes: []float64{math.NaN(), 0.5}}))
	good2 := q.Enqueue(AddObjectOp(Object{ID: 7302, Attributes: []float64{0.6, 0.6}}))
	go q.pump()
	defer q.Close()

	if err := <-good1; err != nil {
		t.Fatal(err)
	}
	if err := <-bad; !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("bad mutation error = %v, want ErrBadAttribute", err)
	}
	if err := <-good2; err != nil {
		t.Fatal(err)
	}
	qs := q.Stats()
	if qs.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (3 attempts for the bad mutation, 1 each for the good)", qs.Retries)
	}
	if ws.Stats().Objects != 62 {
		t.Fatalf("Objects = %d, want 62", ws.Stats().Objects)
	}
}
