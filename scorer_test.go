package fairassign

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// scorerSet is the family sweep used by the public API tests; entries
// with nil scorers exercise the linear default alongside.
func scorerSet() []*Scorer {
	return []*Scorer{
		nil,
		Linear(),
		OWA(0.5, 0.3, 0.2),
		Minimax(),
		Best(),
		Median(),
		Chebyshev(),
		Lp(2),
		Lp(3),
	}
}

func randomProblem(seed int64, dims, nf, no int) ([]Object, []Function) {
	rng := rand.New(rand.NewSource(seed))
	objs := GenerateObjects(Independent, no, dims, seed+1)
	funcs := GenerateFunctions(nf, dims, seed+2)
	set := scorerSet()
	for i := range funcs {
		sc := set[rng.Intn(len(set))]
		if sc != nil && len(sc.weights) > 0 && len(sc.weights) != dims {
			sc = OWA(funcs[i].Weights...) // dims-matched OWA fallback
		}
		funcs[i].Scorer = sc
	}
	return objs, funcs
}

func pairsEqualEps(t *testing.T, got, want []Pair, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	sortPairs := func(ps []Pair) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].FunctionID != ps[j].FunctionID {
				return ps[i].FunctionID < ps[j].FunctionID
			}
			return ps[i].ObjectID < ps[j].ObjectID
		})
	}
	g := append([]Pair(nil), got...)
	w := append([]Pair(nil), want...)
	sortPairs(g)
	sortPairs(w)
	for i := range g {
		if g[i].FunctionID != w[i].FunctionID || g[i].ObjectID != w[i].ObjectID {
			t.Fatalf("%s: pair %d = (f%d,o%d), want (f%d,o%d)",
				label, i, g[i].FunctionID, g[i].ObjectID, w[i].FunctionID, w[i].ObjectID)
		}
		if math.Abs(g[i].Score-w[i].Score) > 1e-9 {
			t.Fatalf("%s: pair %d score %v, want %v", label, i, g[i].Score, w[i].Score)
		}
	}
}

// TestScorerSolveMatchesOracle runs every algorithm over mixed-family
// populations and checks each against the definitional greedy.
func TestScorerSolveMatchesOracle(t *testing.T) {
	algos := []Algorithm{SB, BruteForce, Chain, SBAlt, TwoSkylines}
	for seed := int64(1); seed <= 4; seed++ {
		dims := 2 + int(seed%3)
		objs, funcs := randomProblem(seed*13, dims, 8, 50)
		want, err := StableOracle(objs, funcs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range algos {
			solver, err := NewSolver(objs, funcs, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg, err)
			}
			res, err := solver.Solve()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg, err)
			}
			pairsEqualEps(t, res.Pairs, want, fmt.Sprintf("seed %d %s", seed, alg))
			if err := solver.Verify(res.Pairs); err != nil {
				t.Fatalf("seed %d %s: unstable: %v", seed, alg, err)
			}
		}
	}
}

// TestSolveBatchScorers checks the multi-tenant path: per-item results
// with non-linear scorers equal their standalone solves.
func TestSolveBatchScorers(t *testing.T) {
	var items []BatchItem
	for seed := int64(21); seed < 25; seed++ {
		objs, funcs := randomProblem(seed, 3, 6, 40)
		items = append(items, BatchItem{Objects: objs, Functions: funcs})
	}
	results := SolveBatch(items, BatchOptions{Parallelism: 4})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		solver, err := NewSolver(items[i].Objects, items[i].Functions, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		pairsEqualEps(t, r.Result.Pairs, want.Pairs, fmt.Sprintf("batch item %d", i))
	}
}

// TestWorkspaceScorerRepair is the mutation-path check: a workspace over
// mixed families — including AddFunction with non-linear scorers —
// repairs to the same matching a cold solve of the mutated population
// produces.
func TestWorkspaceScorerRepair(t *testing.T) {
	objs, funcs := randomProblem(77, 3, 6, 40)
	ws, err := NewWorkspace(objs, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	curObjs := append([]Object(nil), objs...)
	curFuncs := append([]Function(nil), funcs...)
	check := func(label string) {
		t.Helper()
		if err := ws.Verify(); err != nil {
			t.Fatalf("%s: workspace unstable: %v", label, err)
		}
		solver, err := NewSolver(curObjs, curFuncs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		pairsEqualEps(t, ws.Assignment(), cold.Pairs, label)
	}
	check("initial")

	arrivals := []Function{
		{ID: 9001, Scorer: Minimax(), Capacity: 2},
		{ID: 9002, Weights: []float64{0.2, 0.3, 0.5}, Scorer: OWA()},
		{ID: 9003, Weights: []float64{0.6, 0.2, 0.2}, Scorer: Chebyshev(), Gamma: 2},
		{ID: 9004, Weights: []float64{0.4, 0.4, 0.2}, Scorer: Lp(2)},
		{ID: 9005, Scorer: Best()},
	}
	for _, f := range arrivals {
		if err := ws.AddFunction(f); err != nil {
			t.Fatalf("AddFunction(%d): %v", f.ID, err)
		}
		curFuncs = append(curFuncs, f)
		check(fmt.Sprintf("after AddFunction(%d)", f.ID))
	}
	// Remove an object some non-linear function likely holds, then a
	// non-linear function, re-checking convergence each time.
	if err := ws.RemoveObject(curObjs[0].ID); err != nil {
		t.Fatal(err)
	}
	curObjs = curObjs[1:]
	check("after RemoveObject")
	if err := ws.RemoveFunction(9001); err != nil {
		t.Fatal(err)
	}
	for i, f := range curFuncs {
		if f.ID == 9001 {
			curFuncs = append(curFuncs[:i], curFuncs[i+1:]...)
			break
		}
	}
	check("after RemoveFunction(minimax)")

	// Snapshot views answer non-linear TopK from the pinned epoch.
	v, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	ranked, err := v.TopK(Function{ID: 1, Scorer: Minimax()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("view TopK returned %d results, want 3", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score+1e-12 {
			t.Fatal("view TopK not in descending score order")
		}
	}
}

// TestTopKMinimaxMatchesScan cross-checks the standalone TopK query
// under an egalitarian scorer against exhaustive evaluation.
func TestTopKMinimaxMatchesScan(t *testing.T) {
	objs := GenerateObjects(Independent, 200, 4, 5)
	got, err := TopK(objs, Function{Scorer: Minimax()}, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	minOf := func(o Object) float64 {
		m := o.Attributes[0]
		for _, v := range o.Attributes[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	want := append([]Object(nil), objs...)
	sort.Slice(want, func(i, j int) bool {
		a, b := minOf(want[i]), minOf(want[j])
		if a != b {
			return a > b
		}
		return want[i].ID < want[j].ID
	})
	for i := range got {
		if got[i].Object.ID != want[i].ID {
			t.Fatalf("rank %d: got object %d, want %d", i, got[i].Object.ID, want[i].ID)
		}
		if math.Abs(got[i].Score-minOf(want[i])) > 1e-12 {
			t.Fatalf("rank %d: score %v, want %v", i, got[i].Score, minOf(want[i]))
		}
	}
}

// TestNormalizationTolerance pins the documented boundary: sums within
// WeightNormalizationTolerance of 1 are left bit-exact, sums beyond it
// are rescaled.
func TestNormalizationTolerance(t *testing.T) {
	inside := []float64{0.25, 0.75 + WeightNormalizationTolerance/2}
	w, err := prepareWeights(Function{ID: 1, Weights: inside}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Float64bits(w[i]) != math.Float64bits(inside[i]) {
			t.Fatalf("weights within tolerance were rescaled: %v -> %v", inside, w)
		}
	}
	outside := []float64{0.25, 0.75 + 2.1*WeightNormalizationTolerance}
	w, err = prepareWeights(Function{ID: 1, Weights: outside}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(w[1]) == math.Float64bits(outside[1]) {
		t.Fatal("weights beyond tolerance were not rescaled")
	}
	sum := w[0] + w[1]
	if math.Abs(sum-1) > 1e-15 {
		t.Fatalf("rescaled sum = %v, want 1", sum)
	}
	// Far-from-normalized input still rescales exactly as before.
	w, err = prepareWeights(Function{ID: 1, Weights: []float64{3, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("normalization broken: %v", w)
	}
	// Typed errors.
	if _, err := prepareWeights(Function{ID: 1, Weights: []float64{math.NaN(), 1}}, Options{}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("NaN weight error = %v, want ErrBadWeight", err)
	}
	if _, err := prepareWeights(Function{ID: 1, Weights: []float64{-1, 2}}, Options{}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("negative weight error = %v, want ErrBadWeight", err)
	}
}

// TestCSVKindColumn covers the extended loader: detection, defaults,
// round-trip, and the typed rejections.
func TestCSVKindColumn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "funcs.csv")
	data := "1,0.5,0.5\n" +
		"2,owa,0.7,0.3\n" +
		"3,minimax\n" +
		"4,chebyshev,0.9,0.1\n" +
		"5,lp:2,0.5,0.5\n" +
		"6,best\n" +
		"7,median\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	funcs, err := LoadFunctionsCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 7 {
		t.Fatalf("loaded %d functions, want 7", len(funcs))
	}
	wantKinds := []string{"linear", "owa", "minimax", "chebyshev", "lp:2", "best", "median"}
	for i, f := range funcs {
		if got := f.Scorer.String(); got != wantKinds[i] {
			t.Errorf("function %d kind = %q, want %q", f.ID, got, wantKinds[i])
		}
	}
	if len(funcs[0].Weights) != 2 || len(funcs[2].Weights) != 0 {
		t.Fatalf("weight columns misparsed: %v / %v", funcs[0].Weights, funcs[2].Weights)
	}

	// The loaded set solves against objects (patterns get dims there).
	objs := GenerateObjects(Independent, 30, 2, 9)
	solver, err := NewSolver(objs, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(); err != nil {
		t.Fatal(err)
	}

	// Round-trip through Save.
	out := filepath.Join(dir, "roundtrip.csv")
	if err := SaveFunctionsCSV(out, funcs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFunctionsCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(funcs) {
		t.Fatalf("round-trip lost functions: %d -> %d", len(funcs), len(back))
	}
	for i := range back {
		if back[i].Scorer.String() != funcs[i].Scorer.String() {
			t.Errorf("round-trip kind %d: %q -> %q", i, funcs[i].Scorer.String(), back[i].Scorer.String())
		}
	}

	// Gamma/capacity extras compose with the kind column.
	extPath := filepath.Join(dir, "ext.csv")
	if err := os.WriteFile(extPath, []byte("8,minimax,2,3\n9,owa,0.5,0.5,1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ext, err := LoadFunctionsCSVExt(extPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ext[0].Gamma != 2 || ext[0].Capacity != 3 || len(ext[0].Weights) != 0 {
		t.Fatalf("extras misparsed with pattern kind: %+v", ext[0])
	}
	if len(ext[1].Weights) != 2 {
		t.Fatalf("extras misparsed with owa kind: %+v", ext[1])
	}

	// Scorer-carried weights win over Function.Weights at solve time, so
	// the save side must emit them too or the round-trip changes scores.
	carried := []Function{{ID: 4, Weights: []float64{0.7, 0.3}, Scorer: Lp(2, 0.4, 0.6)}}
	cw := filepath.Join(dir, "carried.csv")
	if err := SaveFunctionsCSV(cw, carried); err != nil {
		t.Fatal(err)
	}
	carriedBack, err := LoadFunctionsCSV(cw)
	if err != nil {
		t.Fatal(err)
	}
	origAF, err := resolveFunction(carried[0], Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	backAF, err := resolveFunction(carriedBack[0], Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range origAF.Weights {
		if origAF.Weights[i] != backAF.Weights[i] {
			t.Fatalf("scorer-carried weights changed across round-trip: %v -> %v", origAF.Weights, backAF.Weights)
		}
	}

	// Typed rejections.
	cases := []struct {
		data string
		want error
	}{
		{"1,frobnicate,0.5,0.5\n", ErrBadScorerKind},
		{"1,lp:0.5,0.5,0.5\n", ErrBadScorerKind},
		{"1,lp:xyz,0.5,0.5\n", ErrBadScorerKind},
		{"1,lp:2junk,0.5,0.5\n", ErrBadScorerKind},
		{"1,owa,-0.5,0.5\n", ErrBadWeight},
		{"1,owa,NaN,0.5\n", ErrBadWeight},
		{"1,owa,Inf,0.5\n", ErrBadWeight},
		{"1,-0.5,0.5\n", ErrBadWeight},
	}
	for _, c := range cases {
		bad := filepath.Join(dir, "bad.csv")
		if err := os.WriteFile(bad, []byte(c.data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFunctionsCSV(bad); !errors.Is(err, c.want) {
			t.Errorf("%q: error = %v, want %v", c.data, err, c.want)
		}
	}
}

// TestPatternWeights pins the OWA shortcut expansions.
func TestPatternWeights(t *testing.T) {
	cases := []struct {
		sc   *Scorer
		dims int
		want []float64
	}{
		{Minimax(), 3, []float64{0, 0, 1}},
		{Best(), 3, []float64{1, 0, 0}},
		{Median(), 3, []float64{0, 1, 0}},
		{Median(), 4, []float64{0, 0.5, 0.5, 0}},
	}
	for _, c := range cases {
		af, err := resolveFunction(Function{ID: 1, Scorer: c.sc}, Options{}, c.dims)
		if err != nil {
			t.Fatal(err)
		}
		if len(af.Weights) != c.dims {
			t.Fatalf("%s dims %d: got %v", c.sc, c.dims, af.Weights)
		}
		for i := range c.want {
			if af.Weights[i] != c.want[i] {
				t.Fatalf("%s dims %d: weights %v, want %v", c.sc, c.dims, af.Weights, c.want)
			}
		}
	}
	// Pattern without derivable dims fails cleanly.
	if _, err := NewSolver(nil, []Function{{ID: 1, Scorer: Minimax()}}, Options{}); err == nil {
		t.Fatal("pattern-only problem without dims should fail")
	}
}

// TestProgressiveScorers drains a progressive matcher over a mixed
// population and checks the emitted set against a batch solve.
func TestProgressiveScorers(t *testing.T) {
	objs, funcs := randomProblem(31, 3, 6, 40)
	m, err := NewProgressiveMatcher(objs, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	lastScore := math.Inf(1)
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if p.Score > lastScore+1e-12 {
			t.Fatalf("progressive emitted out of order: %v after %v", p.Score, lastScore)
		}
		lastScore = p.Score
		got = append(got, p)
	}
	solver, err := NewSolver(objs, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pairsEqualEps(t, got, want.Pairs, "progressive vs solve")
}
