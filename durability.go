package fairassign

import (
	"fairassign/internal/assign"
)

// Typed durability errors (match with errors.Is).
var (
	// ErrNotDurable is returned by SaveSnapshot on a workspace built
	// without Options.WALDir, and by OpenWorkspace without one.
	ErrNotDurable = assign.ErrNotDurable
	// ErrNoSnapshot is returned by OpenWorkspace when the durability
	// directory holds nothing to recover from.
	ErrNoSnapshot = assign.ErrNoSnapshot
	// ErrBadSnapshot marks a snapshot file that failed its checksums or
	// cross-validation. OpenWorkspace falls back to the previous good
	// generation and returns this only when every generation is
	// unreadable.
	ErrBadSnapshot = assign.ErrBadSnapshot
	// ErrTornWrite marks a torn or corrupt write-ahead-log tail record.
	// Recovery truncates the tail (it was never acknowledged) and
	// reports it in RecoveryInfo rather than failing.
	ErrTornWrite = assign.ErrTornWrite
	// ErrWALDiverged is returned by OpenWorkspace when the log cannot be
	// reconciled with the snapshot lineage (an epoch gap or a replayed
	// batch the snapshot state rejects) — unrecoverable divergence,
	// surfaced as a typed error rather than a guess.
	ErrWALDiverged = assign.ErrWALDiverged
	// ErrDurableDirInUse is returned by NewWorkspace when WALDir already
	// holds a workspace; recover it with OpenWorkspace instead.
	ErrDurableDirInUse = assign.ErrDurableDirInUse
)

// RecoveryInfo describes how OpenWorkspace reconstructed a workspace.
type RecoveryInfo struct {
	// SnapshotEpoch is the epoch of the snapshot the restore used;
	// SnapshotsSkipped counts newer generations that failed validation
	// and were passed over.
	SnapshotEpoch    uint64
	SnapshotsSkipped int
	// BatchesReplayed and MutationsReplayed count the committed
	// write-ahead-log records reapplied past the snapshot.
	BatchesReplayed   int
	MutationsReplayed int
	// TornTail reports that the log ended in a torn or corrupt record,
	// which was truncated; TornDetail describes it.
	TornTail   bool
	TornDetail string
	// FinalEpoch is the workspace epoch after replay — the epoch the
	// crashed process had last acknowledged (or one past it, when the
	// crash hit between making a batch durable and acknowledging it).
	FinalEpoch uint64
}

// OpenWorkspace recovers a durable Workspace from opts.WALDir: the
// newest readable snapshot is restored into a ready-to-serve workspace
// in time proportional to the file — no re-solve — and the committed
// write-ahead-log batches past its epoch are replayed. Torn log tails
// (the un-acknowledged batch a crash interrupted) are truncated;
// corrupt snapshots fall back to the previous generation with a longer
// replay. The recovered workspace continues the exact epoch lineage of
// the crashed one and, when opts.Durable is set, resumes logging into a
// fresh segment.
//
// The population, weights, and capacities all come from the durable
// state; opts supplies only the runtime configuration (page size,
// buffering, workers, durability), which is why it must match the
// PageSize the workspace was built with only in so far as the page
// stores are rebuilt from the snapshot's own page size.
func OpenWorkspace(opts Options) (*Workspace, error) {
	ws, err := assign.OpenWorkspace(opts.assignConfig())
	if err != nil {
		return nil, err
	}
	return &Workspace{ws: ws, opts: opts}, nil
}

// SaveSnapshot persists the current epoch into Options.WALDir and, on a
// WAL-enabled workspace, rotates the log: recovery after this call
// restores from the new snapshot and replays only mutations applied
// after it. Old snapshots (beyond one fallback generation) and log
// segments no retained snapshot needs are pruned. Safe to call at any
// time; a crash at any byte of the save leaves a recoverable directory.
func (w *Workspace) SaveSnapshot() error { return w.ws.SaveSnapshot() }

// Recovery returns how this workspace was recovered by OpenWorkspace,
// or nil if it was built fresh by NewWorkspace.
func (w *Workspace) Recovery() *RecoveryInfo {
	ri := w.ws.Recovery()
	if ri == nil {
		return nil
	}
	return &RecoveryInfo{
		SnapshotEpoch:     ri.SnapshotEpoch,
		SnapshotsSkipped:  ri.SnapshotsSkipped,
		BatchesReplayed:   ri.BatchesReplayed,
		MutationsReplayed: ri.MutationsReplayed,
		TornTail:          ri.TornTail,
		TornDetail:        ri.TornDetail,
		FinalEpoch:        ri.FinalEpoch,
	}
}
