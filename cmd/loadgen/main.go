// Command loadgen replays a seeded production-style workload against a
// live Workspace and reports latency percentiles per operation class.
//
// The trace is an open-loop arrival schedule (Poisson, optionally
// burst-modulated) of mixed traffic: mutations (object/function
// arrivals and departures with Zipf-skewed departure targets),
// snapshot acquires, and top-K view queries from a Zipf-popular query
// pool. The same seed always generates the same trace, so a reported
// run replays exactly.
//
// By default the trace is driven twice — once applying each mutation
// as its own commit, once through the group-commit MutationQueue —
// and the final matchings are asserted identical across modes, making
// every loadgen run double as a conformance check of the batched
// write path. The JSON report carries the spec plus both runs.
//
// Usage:
//
//	loadgen [-out traffic.json] [-seed 20090824] [-n 2000] [-funcs 64]
//	        [-dims 3] [-ops 20000] [-rate 5000] [-burst 4] [-zipf 1.2]
//	        [-write 0.2] [-batch 128] [-mode both|seq|batch]
//	        [-shards N] [-closed] [-clients C]
//	        [-crash] [-preflight 0] [-quick]
//
// -shards N (> 1) makes the trace multi-tenant: every mutation is
// tagged with the shard routing key the sharded tier assigns it, and
// an additional run drives a ShardedWorkspace through per-shard
// group-commit lanes, reporting per-shard mutation percentiles next to
// the global classes. -closed adds a closed-loop run: the arrival
// schedule is ignored and C read clients (plus one writer client per
// mutation lane) each issue their next operation only on completion —
// sweeping -clients across runs traces the throughput/latency knee.
// All runs must end in the same final matching; the process exits
// non-zero otherwise.
//
// -crash additionally runs the crash-replay conformance mode: the same
// trace's mutation stream is applied to a durable workspace that is
// killed mid-trace (no Close — only the fsynced WAL and the last
// snapshot survive), recovered with OpenWorkspace, and finished; the
// final matching must equal the uninterrupted run's. -preflight runs N
// batch-conformance scripts per grid cell before generating traffic (0
// skips); -quick is a CI smoke preset (small population, few thousand
// ops at high rate, so the run finishes in seconds).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"fairassign"
	"fairassign/internal/conformance"
	"fairassign/internal/traffic"
)

// report is the JSON artifact: the generating spec plus one result per
// driver mode.
type report struct {
	Spec traffic.Spec      `json:"spec"`
	Runs []*traffic.Result `json:"runs"`
	// Crash is the crash-replay conformance run (-crash): the trace's
	// mutation stream interrupted mid-way on a durable workspace,
	// recovered from snapshot + WAL, finished, and checked against an
	// uninterrupted twin.
	Crash *traffic.CrashResult `json:"crash,omitempty"`
}

func main() {
	out := flag.String("out", "traffic.json", "output JSON path")
	seed := flag.Int64("seed", 20090824, "trace seed (same seed replays the same trace)")
	n := flag.Int("n", 2000, "initial object population")
	funcs := flag.Int("funcs", 64, "initial function population")
	dims := flag.Int("dims", 3, "attribute dimensionality")
	ops := flag.Int("ops", 20000, "operations in the trace")
	rate := flag.Float64("rate", 5000, "mean arrival rate, ops/sec (open loop)")
	burst := flag.Float64("burst", 4, "burst factor: arrivals alternate Rate*b / Rate/b (<=1 disables)")
	zipf := flag.Float64("zipf", 1.2, "popularity skew for departures and queries (<=1 uniform)")
	write := flag.Float64("write", 0.2, "fraction of operations that are mutations")
	maxCap := flag.Int("maxcap", 3, "max random capacity for arriving entities (<=1 unit caps)")
	batch := flag.Int("batch", 128, "group-commit max batch size")
	mode := flag.String("mode", "both", "driver mode: both, seq, or batch")
	shards := flag.Int("shards", 0, "multi-tenant mode: tag mutations with shard routing keys and add a sharded-tier run with per-shard latency (>1 enables)")
	closed := flag.Bool("closed", false, "add a closed-loop run: ignore the arrival schedule, drive with a fixed client population, and report saturation throughput (sweep -clients to find the knee)")
	clients := flag.Int("clients", 8, "closed-loop read-client population (-closed)")
	crash := flag.Bool("crash", false, "also run the crash-replay conformance mode: crash a durable workspace mid-trace, recover from snapshot+WAL, finish, and require the final matching to equal an uninterrupted run")
	preflight := flag.Int("preflight", 0, "batch-conformance scripts per grid cell before the run (0 skips)")
	quick := flag.Bool("quick", false, "CI smoke preset: small trace at high rate")
	flag.Parse()

	if *preflight > 0 {
		specs := conformance.BatchSweep(*preflight)
		fmt.Printf("pre-flight: batch conformance, %d scripts... ", len(specs))
		start := time.Now()
		for _, spec := range specs {
			if err := conformance.VerifyBatchDefault(spec); err != nil {
				fmt.Fprintf(os.Stderr, "\nloadgen: conformance pre-flight failed: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("ok (%v)\n", time.Since(start).Round(time.Millisecond))
	}

	spec := traffic.Spec{
		Seed:      *seed,
		Dims:      *dims,
		Objects:   *n,
		Functions: *funcs,
		Ops:       *ops,
		Rate:      *rate,
		Burst:     *burst,
		Zipf:      *zipf,
		WriteFrac: *write,
		MaxCap:    *maxCap,
		Shards:    *shards,
	}
	if *quick {
		spec.Objects = 400
		spec.Functions = 16
		spec.Ops = 3000
		spec.Rate = 20000
	}

	tr, err := traffic.NewTrace(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: %s (%d ops, %v of schedule)\n", spec, len(tr.Ops), tr.Ops[len(tr.Ops)-1].At.Round(time.Millisecond))

	var modes []traffic.Mode
	switch *mode {
	case "both":
		modes = []traffic.Mode{traffic.ModeSequential, traffic.ModeBatch}
	case "seq":
		modes = []traffic.Mode{traffic.ModeSequential}
	case "batch":
		modes = []traffic.Mode{traffic.ModeBatch}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -mode %q (want both, seq, or batch)\n", *mode)
		os.Exit(1)
	}

	rep := report{Spec: spec}
	var pairSets [][]uint64
	collect := func(label string, res *traffic.Result, pairs []fairassign.Pair, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s run: %v\n", label, err)
			os.Exit(1)
		}
		rep.Runs = append(rep.Runs, res)
		printRun(res)
		if res.MutationErrors > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %s run rejected %d mutations from a well-formed trace\n", label, res.MutationErrors)
			os.Exit(1)
		}
		keys := make([]uint64, 0, 2*len(pairs))
		for _, p := range pairs {
			keys = append(keys, p.FunctionID, p.ObjectID)
		}
		pairSets = append(pairSets, keys)
	}
	for _, m := range modes {
		res, pairs, err := traffic.Run(tr, m, *batch)
		collect(string(m), res, pairs, err)
	}
	if spec.Shards > 1 {
		res, pairs, err := traffic.RunSharded(tr, *batch)
		collect("sharded", res, pairs, err)
	}
	if *closed {
		res, pairs, err := traffic.RunClosed(tr, *clients, *batch)
		collect("closed", res, pairs, err)
	}
	// Every driver lands the same mutation stream (FIFO per dependency
	// lane), so all modes must end in the same matching.
	for i := 1; i < len(pairSets); i++ {
		if !sameMultiset(pairSets[0], pairSets[i]) {
			fmt.Fprintf(os.Stderr, "loadgen: CONFORMANCE FAILURE: %s and %s runs produced different final matchings\n",
				rep.Runs[0].Mode, rep.Runs[i].Mode)
			os.Exit(1)
		}
	}
	if len(pairSets) > 1 {
		fmt.Printf("conformance: final matchings identical across %d runs (%d pairs)\n", len(pairSets), rep.Runs[0].FinalPairs)
	}

	if *crash {
		cr, err := traffic.RunCrashReplayTemp(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: crash replay: %v\n", err)
			os.Exit(1)
		}
		rep.Crash = cr
		torn := ""
		if cr.TornTail {
			torn = ", torn tail truncated"
		}
		fmt.Printf("crash replay: crashed at mutation %d/%d, recovered from snapshot epoch %d + %d WAL batches (%d mutations%s) in %v, finished trace\n",
			cr.CrashAtMutation, cr.TotalMutations, cr.SnapshotEpoch, cr.BatchesReplayed, cr.MutationsReplayed, torn,
			time.Duration(cr.RecoveryNS).Round(time.Microsecond))
		if !cr.Identical {
			fmt.Fprintln(os.Stderr, "loadgen: CONFORMANCE FAILURE: crash-recovered matching differs from the uninterrupted run")
			os.Exit(1)
		}
		fmt.Println("conformance: crash-recovered matching identical to the uninterrupted run")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func printRun(r *traffic.Result) {
	tag := ""
	if r.Shards > 0 {
		tag = fmt.Sprintf(" [%d shards]", r.Shards)
	}
	if r.Clients > 0 {
		tag += fmt.Sprintf(" [%d clients, closed loop]", r.Clients)
	}
	fmt.Printf("%-10s %6d ops in %8v (%.0f ops/s achieved) | mutations %d, commits %d%s\n",
		r.Mode, r.Ops, time.Duration(r.WallNS).Round(time.Millisecond), r.AchievedRate, r.Mutations, r.Commits, tag)
	for _, class := range []string{"mutation", "snapshot_acquire", "view_query"} {
		cs, ok := r.Classes[class]
		if !ok || cs.Count == 0 {
			continue
		}
		fmt.Printf("  %-16s n=%-6d p50 %9v  p95 %9v  p99 %9v  max %9v\n",
			class, cs.Count,
			time.Duration(cs.P50NS).Round(time.Microsecond),
			time.Duration(cs.P95NS).Round(time.Microsecond),
			time.Duration(cs.P99NS).Round(time.Microsecond),
			time.Duration(cs.MaxNS).Round(time.Microsecond))
	}
	for s, cs := range r.PerShard {
		if cs.Count == 0 {
			continue
		}
		fmt.Printf("  shard %-10d n=%-6d p50 %9v  p95 %9v  p99 %9v  max %9v\n",
			s, cs.Count,
			time.Duration(cs.P50NS).Round(time.Microsecond),
			time.Duration(cs.P95NS).Round(time.Microsecond),
			time.Duration(cs.P99NS).Round(time.Microsecond),
			time.Duration(cs.MaxNS).Round(time.Microsecond))
	}
}

// sameMultiset compares two flattened (functionID, objectID) pair lists
// as multisets.
func sameMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[[2]uint64]int, len(a)/2)
	for i := 0; i < len(a); i += 2 {
		counts[[2]uint64{a[i], a[i+1]}]++
	}
	for i := 0; i < len(b); i += 2 {
		k := [2]uint64{b[i], b[i+1]}
		if counts[k] == 0 {
			return false
		}
		counts[k]--
	}
	return true
}
