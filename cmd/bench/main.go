// Command bench is the reproducible hot-path benchmark pipeline: it
// measures warm node reads, BBS, kNN, TA top-1, full SB solves, and a
// SolveBatch workload with the decoded-node cache disabled ("cold": the
// pre-cache behaviour) and enabled ("warm"), and writes the comparison as
// machine-readable JSON so every future PR has a perf trajectory to beat.
//
// Before measuring anything it runs the conformance harness as a
// pre-flight check (the cached paths must produce the oracle matching on
// the full differential sweep), and it fails if cold and warm runs ever
// diverge in matching or physical I/O.
//
// Usage:
//
//	bench [-out BENCH_hotpath.json] [-sizes 2000,10000] [-dims 2,4]
//	      [-budget 200ms] [-seed 20090824] [-preflight 1] [-quick]
//
// -preflight sets the conformance seeds per grid cell (0 skips the
// sweep); -quick is a CI smoke preset (tiny sizes, short budget, one-cell
// preflight).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fairassign/internal/bench"
	"fairassign/internal/conformance"
)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	sizes := flag.String("sizes", "2000,10000", "comma-separated object counts")
	dims := flag.String("dims", "2,4", "comma-separated dimensionalities")
	budget := flag.Duration("budget", 200*time.Millisecond, "time budget per measurement")
	seed := flag.Int64("seed", 20090824, "random seed for data generation")
	preflight := flag.Int("preflight", 1, "conformance seeds per grid cell (0 skips the sweep)")
	quick := flag.Bool("quick", false, "CI smoke preset: tiny sizes, short budget")
	prodSize := flag.Int("prodsize", 1_000_000, "object count for the production-scale section (0 skips it)")
	baseline := flag.String("baseline", "", "prior report (e.g. BENCH_main.json) to compute before/after deltas against")
	maxRegress := flag.Float64("maxregress", 0, "fail if any warm case regresses vs the baseline by more than this percent (0 disables)")
	flag.Parse()

	opts := bench.Options{
		Seed:     *seed,
		Sizes:    parseInts(*sizes),
		Dims:     parseInts(*dims),
		Budget:   *budget,
		ProdSize: *prodSize,
	}
	if *quick {
		opts.Sizes = []int{1000}
		opts.Dims = []int{3}
		opts.Budget = 50 * time.Millisecond
		if opts.ProdSize > 20000 {
			opts.ProdSize = 20000
		}
	}

	confSummary := "skipped"
	if *preflight > 0 {
		specs := conformance.StandardSweep(*preflight)
		if *quick && len(specs) > 16 {
			// Smoke preset: a slice of the grid, not the full sweep.
			specs = specs[:16]
		}
		scorerSpecs := conformance.ScorerSweep(*preflight)
		if *quick && len(scorerSpecs) > 16 {
			scorerSpecs = scorerSpecs[:16]
		}
		fmt.Printf("pre-flight: conformance sweep, %d linear + %d scorer-family cases... ", len(specs), len(scorerSpecs))
		start := time.Now()
		for _, spec := range specs {
			if err := conformance.Verify(spec); err != nil {
				fmt.Fprintf(os.Stderr, "\nbench: conformance pre-flight failed: %v\n", err)
				os.Exit(1)
			}
		}
		for _, spec := range scorerSpecs {
			if err := conformance.VerifyScorers(spec); err != nil {
				fmt.Fprintf(os.Stderr, "\nbench: scorer conformance pre-flight failed: %v\n", err)
				os.Exit(1)
			}
		}
		confSummary = fmt.Sprintf("passed (%d cases)", len(specs)+len(scorerSpecs))
		fmt.Printf("ok (%v)\n", time.Since(start).Round(time.Millisecond))
	}

	rep, err := bench.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	rep.Conformance = confSummary
	host := fmt.Sprintf("%s %s/%s", rep.GoVersion, rep.GOOS, rep.GOARCH)
	if rep.GOAMD64 != "" {
		host += " " + rep.GOAMD64
	}
	fmt.Printf("%s  simd=%s\n", host, rep.SIMDLevel)

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base bench.Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		bench.ApplyBaseline(rep, &base)
	}

	diverged := false
	for _, c := range rep.Cases {
		iox := "io=identical"
		if !c.IOIdentical {
			iox = "IO DIVERGED"
		}
		fmt.Printf("%-14s n=%-6d d=%d  cold %10d ns/op %7d allocs/op | warm %10d ns/op %7d allocs/op | allocs -%5.1f%% ns -%5.1f%% %s\n",
			c.Name, c.N, c.Dims,
			c.Cold.NsPerOp, c.Cold.AllocsPerOp,
			c.Warm.NsPerOp, c.Warm.AllocsPerOp,
			c.AllocsReductionPct, c.NsReductionPct, iox)
		if c.VsBaseline != nil {
			fmt.Printf("%-14s %-12s vs baseline: allocs %d -> %d (-%.1f%%), ns %d -> %d (-%.1f%%)\n",
				"", "",
				c.VsBaseline.BaselineAllocsPerOp, c.Warm.AllocsPerOp, c.VsBaseline.AllocsReductionPct,
				c.VsBaseline.BaselineNsPerOp, c.Warm.NsPerOp, c.VsBaseline.NsReductionPct)
		}
		if !c.IOIdentical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): cold/warm I/O diverged (cold %d/%d, warm %d/%d)\n",
				c.Name, c.N, c.Dims, c.Cold.LogicalReads, c.Cold.PhysicalIO, c.Warm.LogicalReads, c.Warm.PhysicalIO)
		}
	}
	regressed := false
	if *maxRegress > 0 {
		for _, c := range rep.Cases {
			if c.VsBaseline != nil && c.VsBaseline.NsReductionPct < -*maxRegress {
				regressed = true
				fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d) regressed %.1f%% vs baseline (limit %.1f%%)\n",
					c.Name, c.N, c.Dims, -c.VsBaseline.NsReductionPct, *maxRegress)
			}
		}
	}
	for _, c := range rep.Incremental {
		match := "matching=identical"
		if !c.Identical {
			match = "MATCHING DIVERGED"
		}
		fmt.Printf("%-22s n=%-6d d=%d  repair %10d ns/op | resolve %12d ns/op | %8.1fx faster | %.1f chain steps, %.1f searches/op %s\n",
			c.Name, c.N, c.Dims, c.RepairNsPerOp, c.ResolveNsPerOp, c.SpeedupX, c.ChainStepsPerOp, c.SearchesPerOp, match)
		if !c.Identical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): repaired matching differs from a cold solve\n", c.Name, c.N, c.Dims)
		}
	}

	for _, c := range rep.Concurrent {
		fmt.Printf("%-22s n=%-6d d=%d  readers=%-3d %10.0f reads/s | repair %10d ns/op under load | %d mutations, %d epochs observed\n",
			c.Name, c.N, c.Dims, c.Readers, c.ReadsPerSec, c.RepairNsPerOp, c.Mutations, c.ReaderEpochSpread)
	}

	for _, c := range rep.ScorerFamilies {
		fmt.Printf("%-26s n=%-6d d=%d  solve %12d ns/op (%d pairs) | topk %10d ns/op (%8.0f /s)\n",
			c.Name, c.N, c.Dims, c.SolveNsPerOp, c.Pairs, c.TopKNsPerOp, c.TopKPerSec)
	}

	for _, c := range rep.BatchCommit {
		match := "matching=identical"
		if !c.Identical {
			match = "MATCHING DIVERGED"
		}
		fmt.Printf("%-22s n=%-6d d=%d  batch=%d  batched %10d ns/mut | sequential %10d ns/mut | %6.2fx faster | %d muts: %d vs %d commits %s\n",
			c.Name, c.N, c.Dims, c.BatchSize, c.BatchedNsPerMut, c.SequentialNsPerMut, c.SpeedupX,
			c.Mutations, c.BatchedCommits, c.SequentialCommits, match)
		if !c.Identical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): batched matching differs from a cold solve\n", c.Name, c.N, c.Dims)
		}
		if c.BatchedNsPerMut >= c.SequentialNsPerMut {
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): batched Apply (%d ns/mut) did not beat per-mutation commits (%d ns/mut)\n",
				c.Name, c.N, c.Dims, c.BatchedNsPerMut, c.SequentialNsPerMut)
		}
	}

	for _, c := range rep.Durability {
		match := "matching=identical"
		if !c.Identical {
			match = "MATCHING DIVERGED"
		}
		fmt.Printf("%-22s n=%-6d d=%d  batch=%d  apply off %8d | nosync %8d | fsync %8d ns/mut | save %8.2fms (%d B) | recover %d batches %8.2fms | warm start %8.2fms %s\n",
			c.Name, c.N, c.Dims, c.BatchSize,
			c.ApplyNsPerMutOff, c.ApplyNsPerMutNoSync, c.ApplyNsPerMutFsync,
			float64(c.SnapshotSaveNs)/1e6, c.SnapshotBytes,
			c.RecoveryBatches, float64(c.RecoveryNs)/1e6, float64(c.WarmStartNs)/1e6, match)
		if !c.Identical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): recovered matching differs from the in-memory twin\n", c.Name, c.N, c.Dims)
		}
	}

	for _, c := range rep.Production {
		match := "identical"
		if !c.Identical {
			match = "OUTPUT DIVERGED"
		}
		if c.RowwiseNsPerOp > 0 {
			fmt.Printf("%-26s n=%-8d d=%d  kernel %12d ns/op | rowwise %12d ns/op | %6.2fx | %s %s\n",
				c.Name, c.N, c.Dims, c.NsPerOp, c.RowwiseNsPerOp, c.SpeedupX, match, c.Detail)
		} else {
			fmt.Printf("%-26s n=%-8d d=%d  %12d ns/op (%d iters) %s\n",
				c.Name, c.N, c.Dims, c.NsPerOp, c.Iterations, c.Detail)
		}
		if !c.Identical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d,dims=%d): optimized path diverged from its definitional twin\n",
				c.Name, c.N, c.Dims)
		}
	}

	for _, c := range rep.ShardedScale {
		match := "identical"
		if !c.Identical {
			match = "OUTPUT DIVERGED"
		}
		speed := ""
		if c.SpeedupX > 0 {
			speed = fmt.Sprintf(" | %5.2fx vs 1 shard", c.SpeedupX)
		}
		fmt.Printf("%-26s n=%-8d d=%d  %8.1f muts/s (apply %9d ns, snap %9d ns) | topk p50 %9d p99 %9d ns%s | %s\n",
			c.Name, c.N, c.Dims, c.MutationsPerSec, c.ApplyNsPerOp, c.SnapNsPerOp,
			c.TopKP50NS, c.TopKP99NS, speed, match)
		if !c.Identical {
			diverged = true
			fmt.Fprintf(os.Stderr, "bench: %s(n=%d): sharded output diverged from the 1-shard run\n", c.Name, c.N)
		}
	}

	// Write the report even on divergence — the JSON is the evidence
	// needed to debug it.
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases, conformance: %s)\n", *out, len(rep.Cases), rep.Conformance)
	if diverged || regressed {
		os.Exit(1)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bench: bad integer list entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
