// Command fairassign computes fair (stable) 1-1 assignments between
// preference functions and objects from CSV files, or on generated
// synthetic data.
//
// Object CSV: id,attr1,...,attrD[,capacity]
// Function CSV: id,w1,...,wD[,gamma[,capacity]]  (weights are normalized
// automatically if they do not sum to 1)
//
// Usage:
//
//	fairassign solve -objects o.csv -functions f.csv [-algorithm sb]
//	fairassign demo  [-objects 2000] [-functions 200] [-dims 4] [-kind anti]
//	fairassign gen   -out objects.csv [-n 10000] [-dims 4] [-kind anti]
package main

import (
	"flag"
	"fmt"
	"os"

	"fairassign"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fairassign: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fairassign solve -objects o.csv -functions f.csv [-algorithm sb|bruteforce|chain|sbalt|twoskylines] [-workers 1] [-buildworkers 0] [-max 0]
  fairassign demo  [-objects 2000] [-functions 200] [-dims 4] [-kind independent|correlated|anti] [-algorithm sb] [-workers 1] [-buildworkers 0]
  fairassign gen   -out data.csv [-n 10000] [-dims 4] [-kind anti] [-seed 1]`)
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	objPath := fs.String("objects", "", "object CSV path (id,attr1..attrD[,capacity])")
	funcPath := fs.String("functions", "", "function CSV path (id,w1..wD[,gamma[,capacity]])")
	alg := fs.String("algorithm", "sb", "algorithm: sb, bruteforce, chain, sbalt, twoskylines")
	workers := fs.Int("workers", 1, "worker goroutines for the search phases (-1 = all CPUs)")
	buildWorkers := fs.Int("buildworkers", 0, "worker goroutines for the STR index build (0 = all CPUs, 1 = sequential)")
	maxPrint := fs.Int("max", 20, "max pairs to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *objPath == "" || *funcPath == "" {
		return fmt.Errorf("both -objects and -functions are required")
	}
	objects, err := fairassign.LoadObjectsCSV(*objPath)
	if err != nil {
		return err
	}
	functions, err := fairassign.LoadFunctionsCSV(*funcPath)
	if err != nil {
		return err
	}
	solver, err := fairassign.NewSolver(objects, functions, fairassign.Options{
		Algorithm:    fairassign.Algorithm(*alg),
		Workers:      *workers,
		BuildWorkers: *buildWorkers,
	})
	if err != nil {
		return err
	}
	result, err := solver.Solve()
	if err != nil {
		return err
	}
	printResult(result, *maxPrint)
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	nObj := fs.Int("objects", 2000, "number of objects")
	nFunc := fs.Int("functions", 200, "number of preference functions")
	dims := fs.Int("dims", 4, "dimensionality")
	kind := fs.String("kind", "anti", "object distribution: independent, correlated, anti")
	alg := fs.String("algorithm", "sb", "algorithm")
	workers := fs.Int("workers", 1, "worker goroutines for the search phases (-1 = all CPUs)")
	buildWorkers := fs.Int("buildworkers", 0, "worker goroutines for the STR index build (0 = all CPUs, 1 = sequential)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	objects := fairassign.GenerateObjects(fairassign.Distribution(*kind), *nObj, *dims, *seed)
	functions := fairassign.GenerateFunctions(*nFunc, *dims, *seed+1)
	solver, err := fairassign.NewSolver(objects, functions, fairassign.Options{
		Algorithm:    fairassign.Algorithm(*alg),
		Workers:      *workers,
		BuildWorkers: *buildWorkers,
	})
	if err != nil {
		return err
	}
	result, err := solver.Solve()
	if err != nil {
		return err
	}
	printResult(result, 10)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output CSV path")
	n := fs.Int("n", 10000, "number of objects")
	dims := fs.Int("dims", 4, "dimensionality")
	kind := fs.String("kind", "anti", "distribution: independent, correlated, anti, zillow, nba")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	objects := fairassign.GenerateObjects(fairassign.Distribution(*kind), *n, *dims, *seed)
	if err := fairassign.SaveObjectsCSV(*out, objects); err != nil {
		return err
	}
	fmt.Printf("wrote %d objects to %s\n", len(objects), *out)
	return nil
}

func printResult(r *fairassign.Result, maxPrint int) {
	fmt.Printf("stable pairs: %d\n", len(r.Pairs))
	fmt.Printf("I/O accesses: %d, CPU: %v, peak search memory: %.1f KB, loops: %d\n",
		r.Stats.IOAccesses, r.Stats.CPUTime, float64(r.Stats.PeakMemoryBytes)/1024, r.Stats.Loops)
	n := len(r.Pairs)
	if maxPrint > 0 && n > maxPrint {
		n = maxPrint
	}
	for _, pr := range r.Pairs[:n] {
		fmt.Printf("  f%-8d -> o%-8d score %.6f\n", pr.FunctionID, pr.ObjectID, pr.Score)
	}
	if n < len(r.Pairs) {
		fmt.Printf("  ... %d more\n", len(r.Pairs)-n)
	}
}
