// Command benchfig regenerates the paper's evaluation figures as text
// tables: the same sweeps, algorithms and metrics (I/O accesses, CPU
// time, peak search-structure memory) that the paper plots in Figures
// 8–17.
//
// Usage:
//
//	benchfig [-scale 0.1] [-seed 20090824] all
//	benchfig [-scale 0.1] fig8 fig13 fig17
//
// scale multiplies the paper's cardinalities (1.0 = |O| up to 400k,
// |F| up to 20k — minutes of runtime; 0.05–0.2 reproduces every trend in
// seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fairassign/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.1, "scale factor for the paper's cardinalities (1.0 = full size)")
	seed := flag.Int64("seed", 20090824, "random seed for data generation")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchfig [-scale f] [-seed n] all|%s ...\n",
			strings.Join(experiments.FigureIDs(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	params := experiments.Params{Scale: *scale, Seed: *seed}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		ids = experiments.FigureIDs()
	} else {
		for _, a := range args {
			if _, ok := experiments.Registry[a]; !ok {
				fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", a)
				os.Exit(2)
			}
			ids = append(ids, a)
		}
	}

	fmt.Printf("fairassign experiment harness — scale %.3g, seed %d\n", *scale, *seed)
	for _, id := range ids {
		results, err := experiments.Registry[id](params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println()
			fmt.Println(r.Format())
		}
	}
}
