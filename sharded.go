package fairassign

import (
	"fmt"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/shard"
)

// PartitionStrategy selects how a ShardedWorkspace maps objects to
// shards.
type PartitionStrategy uint8

const (
	// PartitionAuto (the default) derives a spatial range partition
	// from the initial object set — contiguous slabs of the STR
	// bulk-load key order, so each shard covers a coherent region —
	// and falls back to ID hashing when the distribution is degenerate
	// (fewer objects than shards, or not enough distinct coordinate
	// values on any axis to cut balanced ranges).
	PartitionAuto PartitionStrategy = iota
	// PartitionSpatial forces the spatial range partition.
	PartitionSpatial
	// PartitionHash forces ID hashing.
	PartitionHash
)

func (s PartitionStrategy) String() string { return s.internal().String() }

func (s PartitionStrategy) internal() shard.PartitionKind {
	switch s {
	case PartitionSpatial:
		return shard.PartitionSpatial
	case PartitionHash:
		return shard.PartitionHash
	default:
		return shard.PartitionAuto
	}
}

// ErrDurabilityUnsupported is returned by NewShardedWorkspace when the
// Options request a WAL: the sharded tier has no durability story yet.
// Run durable single Workspaces, or treat the sharded tier as a
// rebuildable serving layer.
var ErrDurabilityUnsupported = shard.ErrDurabilityUnsupported

// ShardedOptions configures a ShardedWorkspace: the embedded Options
// are honored exactly as in NewWorkspace (Durable/WALDir excepted —
// they are rejected), plus the shard layout.
type ShardedOptions struct {
	Options
	// Shards is the number of object shards (<= 0 means 1).
	Shards int
	// Partition selects the object->shard mapping.
	Partition PartitionStrategy
	// SearchWorkers bounds how many shards repair probes and commit
	// flushes touch concurrently: <= 0 uses min(Shards, GOMAXPROCS);
	// 1 runs them sequentially. The matching is identical either way.
	SearchWorkers int
}

// ShardedWorkspace is the scale-out tier over Workspace: the object
// space is partitioned across N shards — each with its own R-tree,
// availability frontier, page store, and epoch stream — behind one
// stable-matching engine. The matching it maintains is byte-identical
// to a single Workspace's at every mutation boundary, for every shard
// count (the conformance suite asserts counts {1,2,4,7}); what changes
// is the serving economics:
//
//   - a mutation dirties only the shard owning its object, so the
//     commit flushes and republishes 1/N of the page state, and the
//     next Snapshot re-captures 1/N of the object table (clean shards
//     are reused by refcount);
//   - cross-shard repair runs a bounded displacement protocol — each
//     shard answers frontier and displacement probes over its own
//     (smaller) structures, fanned out across SearchWorkers on
//     multi-core hosts;
//   - global TopK lazily merges per-shard ranked streams by score
//     ceiling, so shards that cannot contribute stop after one node.
//
// ShardedWorkspace follows the same single-writer / many-readers
// contract as Workspace and satisfies Applier, so MutationQueue (or
// the shard-routing ShardedQueue) can front it.
type ShardedWorkspace struct {
	e    *shard.Engine
	opts Options
}

// ShardBreakdown is one shard's slice of ShardedStats.
type ShardBreakdown struct {
	// Objects and AssignedUnits this shard owns, and the size of its
	// availability frontier.
	Objects       int
	AssignedUnits int
	Frontier      int
	// Epoch is the shard's own page-store epoch; clean shards keep
	// their epoch while dirty ones advance, which is the amortization
	// the tier exists for.
	Epoch uint64
}

// ShardedStats summarizes a sharded workspace. Objects, Functions, and
// AssignedUnits are partition-invariant (always equal to the single
// Workspace's). AvailableFrontier and the work counters are
// partition-dependent: per-shard frontiers can overlap-free union to
// more points than one global skyline, and every repair proposal
// probes all shards.
type ShardedStats struct {
	Shards            int
	Objects           int
	Functions         int
	AssignedUnits     int
	AvailableFrontier int
	Mutations         int64
	Commits           int64
	// Seq is the global commit sequence number Snapshot pins.
	Seq        uint64
	ChainSteps int64
	Searches   int64
	Resolves   int64
	IOAccesses int64
	PerShard   []ShardBreakdown
}

func shardedStatsFromInternal(s shard.Stats) ShardedStats {
	out := ShardedStats{
		Shards:            s.Shards,
		Objects:           s.Objects,
		Functions:         s.Functions,
		AssignedUnits:     s.AssignedUnits,
		AvailableFrontier: s.Frontier,
		Mutations:         s.Mutations,
		Commits:           s.Commits,
		Seq:               s.Seq,
		ChainSteps:        s.ChainSteps,
		Searches:          s.Searches,
		Resolves:          s.Resolves,
		IOAccesses:        s.IO.Accesses(),
	}
	out.PerShard = make([]ShardBreakdown, len(s.PerShard))
	for i, ps := range s.PerShard {
		out.PerShard[i] = ShardBreakdown{
			Objects:       ps.Objects,
			AssignedUnits: ps.AssignedUnits,
			Frontier:      ps.Frontier,
			Epoch:         ps.Epoch,
		}
	}
	return out
}

// NewShardedWorkspace validates the inputs, computes the initial
// matching with one full SB solve, partitions the object space, and
// bulk-loads one index per shard. Input handling (dimensionality,
// weight normalization, scorer families) matches NewWorkspace exactly.
func NewShardedWorkspace(objects []Object, functions []Function, sopts ShardedOptions) (*ShardedWorkspace, error) {
	if len(objects) == 0 && len(functions) == 0 {
		return nil, fmt.Errorf("fairassign: nothing to assign")
	}
	dims := problemDims(objects, functions)
	if dims == 0 {
		return nil, fmt.Errorf("fairassign: cannot derive dimensionality (no objects and no function carries explicit weights)")
	}
	p := &assign.Problem{Dims: dims}
	for _, o := range objects {
		p.Objects = append(p.Objects, assign.Object{
			ID:       o.ID,
			Point:    geom.Point(o.Attributes).Clone(),
			Capacity: o.Capacity,
		})
	}
	for _, f := range functions {
		af, err := resolveFunction(f, sopts.Options, dims)
		if err != nil {
			return nil, err
		}
		p.Functions = append(p.Functions, af)
	}
	e, err := shard.New(p, sopts.assignConfig(), shard.Options{
		Shards:        sopts.Shards,
		Partition:     sopts.Partition.internal(),
		SearchWorkers: sopts.SearchWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedWorkspace{e: e, opts: sopts.Options}, nil
}

// Dims returns the workspace dimensionality.
func (w *ShardedWorkspace) Dims() int { return w.e.Dims() }

// Shards returns the shard count.
func (w *ShardedWorkspace) Shards() int { return w.e.ShardCount() }

// Partition returns the resolved partition strategy ("spatial" or
// "hash" — Auto resolves at construction).
func (w *ShardedWorkspace) Partition() string { return w.e.Partition().String() }

// ShardOfObject returns the shard owning a live object.
func (w *ShardedWorkspace) ShardOfObject(id uint64) (int, bool) { return w.e.ShardOfObject(id) }

// RouteMutation returns the shard a mutation's work lands on: the
// owning (or would-be owning) shard for object operations, and -1 for
// function operations, whose structures are global. ShardedQueue uses
// this to coalesce per-shard batches.
func (w *ShardedWorkspace) RouteMutation(m Mutation) int {
	switch m.kind {
	case assign.MutAddObject:
		return w.e.RouteObject(geom.Point(m.obj.Attributes), m.obj.ID)
	case assign.MutRemoveObject:
		if s, ok := w.e.ShardOfObject(m.id); ok {
			return s
		}
		return 0 // unknown ID: validation rejects it wherever it lands
	default:
		return -1
	}
}

// Apply applies a batch of mutations as one group commit, with
// Workspace.Apply's exact semantics: up-front sequential validation
// (an error applies nothing), per-mutation chain repair in arrival
// order, one global sequence publish at the end — but only the shards
// the batch actually dirtied flush, republish, and later re-capture.
func (w *ShardedWorkspace) Apply(muts []Mutation) error {
	ims := make([]assign.Mutation, len(muts))
	dims := w.Dims()
	for i := range muts {
		im, err := muts[i].internal(w.opts, dims)
		if err != nil {
			return fmt.Errorf("fairassign: mutation %d (%s): %w", i, muts[i].String(), err)
		}
		ims[i] = im
	}
	return w.e.Apply(ims)
}

// AddObject introduces a new object on its owning shard; the matching
// is repaired in place.
func (w *ShardedWorkspace) AddObject(o Object) error {
	return w.Apply([]Mutation{AddObjectOp(o)})
}

// RemoveObject withdraws an object; functions holding it re-chain,
// possibly landing on other shards.
func (w *ShardedWorkspace) RemoveObject(id uint64) error {
	return w.Apply([]Mutation{RemoveObjectOp(id)})
}

// AddFunction introduces a new preference function; it claims its
// stable share of the objects via cross-shard displacement chains.
func (w *ShardedWorkspace) AddFunction(f Function) error {
	return w.Apply([]Mutation{AddFunctionOp(f)})
}

// RemoveFunction withdraws a function; the object units it held are
// re-offered shard by shard to the functions that want them most.
func (w *ShardedWorkspace) RemoveFunction(id uint64) error {
	return w.Apply([]Mutation{RemoveFunctionOp(id)})
}

// Assignment returns the current stable matching in the definitional
// greedy order — byte-identical to the equivalent single Workspace's.
func (w *ShardedWorkspace) Assignment() []Pair { return pairsFromInternal(w.e.Pairs()) }

// Stats returns a point-in-time summary with per-shard breakdown.
func (w *ShardedWorkspace) Stats() ShardedStats { return shardedStatsFromInternal(w.e.Stats()) }

// Verify checks that the current matching is stable for the current
// population, concatenated across shards.
func (w *ShardedWorkspace) Verify() error { return w.e.VerifyStable() }

// Close releases every shard's page store. The workspace must not be
// used afterwards.
func (w *ShardedWorkspace) Close() { w.e.Close() }

// Snapshot returns a read-only view pinning every shard's latest
// published epoch atomically under one global sequence number: the
// composed observation is consistent even though each shard advances
// its own epoch stream. Only shards dirtied since the last snapshot
// are re-captured; clean shards are shared by refcount, so snapshot
// cost scales with write locality, not population.
func (w *ShardedWorkspace) Snapshot() (*ShardedView, error) {
	v, err := w.e.Snapshot()
	if err != nil {
		return nil, err
	}
	return &ShardedView{v: v, opts: w.opts}, nil
}

// ShardedView is a snapshot-isolated read handle on a ShardedWorkspace,
// with View's semantics: answers are immune to later mutations, safe
// for concurrent use, valid after the workspace closes, and released
// by Close.
type ShardedView struct {
	v    *shard.View
	opts Options
}

// Seq returns the global commit sequence number this view observes
// (one publish at construction plus one per Apply batch).
func (v *ShardedView) Seq() uint64 { return v.v.Seq() }

// Dims returns the problem dimensionality.
func (v *ShardedView) Dims() int { return v.v.Dims() }

// Close releases the view's per-shard epoch pins. Idempotent.
func (v *ShardedView) Close() { v.v.Close() }

// Assignment returns the frozen stable matching in the definitional
// greedy order. The slice is freshly allocated and owned by the caller.
func (v *ShardedView) Assignment() []Pair { return pairsFromInternal(v.v.Pairs()) }

// Stats returns the workspace summary as of the view's sequence point.
func (v *ShardedView) Stats() ShardedStats { return shardedStatsFromInternal(v.v.Stats()) }

// Verify checks that the frozen matching is stable for the frozen
// population — answered entirely from the snapshot.
func (v *ShardedView) Verify() error { return v.v.VerifyStable() }

// TopK returns the k objects the given preference function ranks
// highest among the view's frozen object set, by lazily merging one
// ranked stream per shard: a shard's stream only advances while its
// score ceiling could still beat the best buffered candidate, so the
// result — and its order — is identical to the single-index BRS scan,
// while cold shards stop after one node read.
func (v *ShardedView) TopK(f Function, k int) ([]Ranked, error) {
	if k <= 0 {
		return nil, nil
	}
	af, err := resolveFunction(f, v.opts, v.Dims())
	if err != nil {
		return nil, err
	}
	if len(af.Weights) != v.Dims() {
		return nil, fmt.Errorf("fairassign: function has %d weights, view has %d dims", len(af.Weights), v.Dims())
	}
	items, scores, err := v.v.TopKScorer(af.Scorer(), k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(items))
	for i, it := range items {
		obj, ok := v.v.Object(it.ID)
		if !ok {
			return nil, fmt.Errorf("fairassign: view index returned unknown object %d", it.ID)
		}
		attrs := make([]float64, len(obj.Point))
		copy(attrs, obj.Point)
		out[i] = Ranked{
			Object: Object{ID: obj.ID, Attributes: attrs, Capacity: obj.Capacity},
			Score:  scores[i],
		}
	}
	return out, nil
}

// ShardedQueue is the shard-routing group-commit front end for a
// ShardedWorkspace: one MutationQueue per shard for object operations
// (routed to the owning shard) plus one for function operations. Each
// pump's batches are shard-coherent, so a drained batch dirties one
// shard and its commit flushes and republishes 1/N of the page state —
// K producers writing to K different shards coalesce into per-shard
// group commits instead of interleaving into batches that dirty
// everything.
type ShardedQueue struct {
	sw     *ShardedWorkspace
	queues []*MutationQueue // queues[i] serves shard i; queues[n] serves function ops
}

// NewShardedQueue starts one pump per shard plus one for function
// operations, all committing into the workspace. maxBatch caps each
// pump's group commit (<= 0 means DefaultMaxBatch). The queue does not
// own the workspace: Close stops the pumps but leaves it open.
func NewShardedQueue(sw *ShardedWorkspace, maxBatch int) *ShardedQueue {
	n := sw.Shards()
	q := &ShardedQueue{sw: sw, queues: make([]*MutationQueue, n+1)}
	for i := range q.queues {
		q.queues[i] = NewMutationQueue(sw, maxBatch)
	}
	return q
}

func (q *ShardedQueue) route(m Mutation) *MutationQueue {
	s := q.sw.RouteMutation(m)
	if s < 0 {
		return q.queues[len(q.queues)-1]
	}
	return q.queues[s]
}

// Enqueue submits one mutation to its shard's pump and returns a
// 1-buffered verdict channel; see MutationQueue.Enqueue.
func (q *ShardedQueue) Enqueue(m Mutation) <-chan error { return q.route(m).Enqueue(m) }

// Close stops accepting new mutations, waits for everything already
// enqueued to commit, and stops every pump. Idempotent.
func (q *ShardedQueue) Close() {
	for _, mq := range q.queues {
		mq.Close()
	}
}

// Stats aggregates the per-pump coalescing counters.
func (q *ShardedQueue) Stats() QueueStats {
	var out QueueStats
	for _, mq := range q.queues {
		s := mq.Stats()
		out.Mutations += s.Mutations
		out.Batches += s.Batches
		out.Retries += s.Retries
		out.Dropped += s.Dropped
	}
	return out
}
