package fairassign_test

import (
	"fmt"

	"fairassign"
)

// The paper's Figure 1: three students with different salary/standing
// preferences compete for four internship positions.
func ExampleNewSolver() {
	positions := []fairassign.Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}}, // a
		{ID: 2, Attributes: []float64{0.2, 0.7}}, // b
		{ID: 3, Attributes: []float64{0.8, 0.2}}, // c
		{ID: 4, Attributes: []float64{0.4, 0.4}}, // d
	}
	students := []fairassign.Function{
		{ID: 1, Weights: []float64{0.8, 0.2}},
		{ID: 2, Weights: []float64{0.2, 0.8}},
		{ID: 3, Weights: []float64{0.5, 0.5}},
	}
	solver, err := fairassign.NewSolver(positions, students, fairassign.Options{})
	if err != nil {
		panic(err)
	}
	result, err := solver.Solve()
	if err != nil {
		panic(err)
	}
	for _, p := range result.Pairs {
		fmt.Printf("student %d -> position %d (%.2f)\n", p.FunctionID, p.ObjectID, p.Score)
	}
	// Output:
	// student 1 -> position 3 (0.68)
	// student 2 -> position 2 (0.60)
	// student 3 -> position 1 (0.55)
}

// Skyline filters the objects that could be anyone's top choice.
func ExampleSkyline() {
	objects := []fairassign.Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}},
		{ID: 2, Attributes: []float64{0.2, 0.7}},
		{ID: 3, Attributes: []float64{0.8, 0.2}},
		{ID: 4, Attributes: []float64{0.4, 0.4}}, // dominated by object 1
	}
	for _, o := range fairassign.Skyline(objects) {
		fmt.Println(o.ID)
	}
	// Output:
	// 1
	// 2
	// 3
}

// TopK answers a single user's preference query.
func ExampleTopK() {
	objects := []fairassign.Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}},
		{ID: 2, Attributes: []float64{0.2, 0.7}},
		{ID: 3, Attributes: []float64{0.8, 0.2}},
	}
	salaryFirst := fairassign.Function{ID: 1, Weights: []float64{4, 1}}
	top, err := fairassign.TopK(objects, salaryFirst, 2, false)
	if err != nil {
		panic(err)
	}
	for _, r := range top {
		fmt.Printf("object %d scores %.2f\n", r.Object.ID, r.Score)
	}
	// Output:
	// object 3 scores 0.68
	// object 1 scores 0.52
}

// ProgressiveMatcher serves a matching while new objects arrive.
func ExampleProgressiveMatcher() {
	objects := []fairassign.Object{{ID: 1, Attributes: []float64{0.3, 0.3}}}
	buyers := []fairassign.Function{
		{ID: 1, Weights: []float64{0.9, 0.1}},
		{ID: 2, Weights: []float64{0.1, 0.9}},
	}
	m, err := fairassign.NewProgressiveMatcher(objects, buyers, fairassign.Options{})
	if err != nil {
		panic(err)
	}
	p, _, _ := m.Next()
	fmt.Printf("first: buyer %d takes object %d\n", p.FunctionID, p.ObjectID)
	if _, ok, _ := m.Next(); !ok {
		fmt.Println("stock exhausted")
	}
	if err := m.AddObject(fairassign.Object{ID: 2, Attributes: []float64{0.6, 0.6}}); err != nil {
		panic(err)
	}
	p, _, _ = m.Next()
	fmt.Printf("after release: buyer %d takes object %d\n", p.FunctionID, p.ObjectID)
	// Output:
	// first: buyer 1 takes object 1
	// stock exhausted
	// after release: buyer 2 takes object 2
}
