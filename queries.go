package fairassign

import (
	"fmt"
	"sort"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
	"fairassign/internal/topk"
)

// This file exposes the paper's two query substrates as standalone
// library features: skyline queries (which objects are candidates for
// anyone) and top-k preference queries (what a single user would get),
// both over the same disk-simulated R-tree used by the solver.

// Skyline returns the objects not dominated by any other object
// ("larger is better" in every attribute) — exactly the candidate set
// the SB algorithm maintains. For object sets that fit comfortably in
// memory this uses the sort-filter-skyline algorithm.
func Skyline(objects []Object) []Object {
	items := make([]rtree.Item, len(objects))
	byID := make(map[uint64]Object, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{ID: o.ID, Point: geom.Point(o.Attributes)}
		byID[o.ID] = o
	}
	sky := skyline.SFS(items)
	out := make([]Object, len(sky))
	for i, s := range sky {
		out[i] = byID[s.ID]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Skyband returns the k-skyband: every object dominated by fewer than k
// others. For any monotone preference the top-k results lie inside the
// k-skyband, so it generalizes Skyline (k = 1) the way top-k generalizes
// top-1.
func Skyband(objects []Object, k int) []Object {
	items := make([]rtree.Item, len(objects))
	byID := make(map[uint64]Object, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{ID: o.ID, Point: geom.Point(o.Attributes)}
		byID[o.ID] = o
	}
	band := skyline.SkybandMem(items, k)
	out := make([]Object, len(band))
	for i, s := range band {
		out[i] = byID[s.ID]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ranked holds one top-k result.
type Ranked struct {
	Object Object
	Score  float64
}

// TopK returns the k objects the given preference function ranks highest
// (the single-user query of Section 2.3, evaluated with BRS over an
// R-tree), under any scorer family the function selects. Weights are
// normalized unless skipNormalization.
func TopK(objects []Object, f Function, k int, skipNormalization bool) ([]Ranked, error) {
	if k <= 0 {
		return nil, nil
	}
	if len(objects) == 0 {
		return nil, nil
	}
	dims := len(objects[0].Attributes)
	af, err := resolveFunction(f, Options{SkipNormalization: skipNormalization}, dims)
	if err != nil {
		return nil, err
	}
	if len(af.Weights) != dims {
		return nil, fmt.Errorf("fairassign: function has %d weights, objects have %d attributes",
			len(af.Weights), dims)
	}

	store := pagestore.NewMemStore(pagestore.DefaultPageSize)
	pool := pagestore.NewBufferPool(store, 1<<20)
	items := make([]rtree.Item, len(objects))
	byID := make(map[uint64]Object, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{ID: o.ID, Point: geom.Point(o.Attributes)}
		byID[o.ID] = o
	}
	tree, err := rtree.BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		return nil, err
	}
	found, scores, err := topk.TopKScorer(tree, af.Scorer(), k, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(found))
	for i := range found {
		out[i] = Ranked{Object: byID[found[i].ID], Score: scores[i]}
	}
	return out, nil
}

// StableOracle computes the stable matching by the definitional greedy
// over all |F|·|O| pairs — O(n·m·log(nm)), intended for audits and small
// instances where an independent, obviously-correct answer is wanted.
func StableOracle(objects []Object, functions []Function) ([]Pair, error) {
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		return nil, err
	}
	res, err := assign.Oracle(solver.problem)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(res.Pairs))
	for i, p := range res.Pairs {
		out[i] = Pair{FunctionID: p.FuncID, ObjectID: p.ObjectID, Score: p.Score}
	}
	return out, nil
}
