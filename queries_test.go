package fairassign

import (
	"math"
	"sort"
	"testing"
)

func TestSkylinePublicAPI(t *testing.T) {
	objects := []Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}}, // a — skyline
		{ID: 2, Attributes: []float64{0.2, 0.7}}, // b — skyline
		{ID: 3, Attributes: []float64{0.8, 0.2}}, // c — skyline
		{ID: 4, Attributes: []float64{0.4, 0.4}}, // d — dominated by a
	}
	sky := Skyline(objects)
	if len(sky) != 3 {
		t.Fatalf("skyline size = %d, want 3", len(sky))
	}
	for _, o := range sky {
		if o.ID == 4 {
			t.Fatal("dominated object d must not be on the skyline")
		}
	}
}

func TestSkylineBrute(t *testing.T) {
	objects := GenerateObjects(AntiCorrelated, 500, 3, 91)
	sky := Skyline(objects)
	onSky := map[uint64]bool{}
	for _, s := range sky {
		onSky[s.ID] = true
	}
	dominates := func(a, b Object) bool {
		strictly := false
		for d := range a.Attributes {
			if a.Attributes[d] < b.Attributes[d] {
				return false
			}
			if a.Attributes[d] > b.Attributes[d] {
				strictly = true
			}
		}
		return strictly
	}
	for _, o := range objects {
		dominated := false
		for _, p := range objects {
			if dominates(p, o) {
				dominated = true
				break
			}
		}
		if dominated == onSky[o.ID] {
			t.Fatalf("object %d: dominated=%v but onSkyline=%v", o.ID, dominated, onSky[o.ID])
		}
	}
}

func TestSkybandPublicAPI(t *testing.T) {
	objects := GenerateObjects(Independent, 200, 3, 92)
	sky := Skyline(objects)
	band1 := Skyband(objects, 1)
	if len(band1) != len(sky) {
		t.Fatalf("1-skyband (%d) must equal skyline (%d)", len(band1), len(sky))
	}
	band3 := Skyband(objects, 3)
	if len(band3) < len(band1) {
		t.Fatal("3-skyband cannot be smaller than the skyline")
	}
	// Every skyline object is in every band.
	in3 := map[uint64]bool{}
	for _, o := range band3 {
		in3[o.ID] = true
	}
	for _, o := range sky {
		if !in3[o.ID] {
			t.Fatalf("skyline object %d missing from 3-skyband", o.ID)
		}
	}
}

func TestTopKPublicAPI(t *testing.T) {
	objects := GenerateObjects(Independent, 300, 3, 93)
	f := Function{ID: 1, Weights: []float64{3, 1, 1}} // normalized internally
	got, err := TopK(objects, f, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("TopK returned %d", len(got))
	}
	// Against a linear scan.
	w := []float64{0.6, 0.2, 0.2}
	scores := make([]float64, len(objects))
	for i, o := range objects {
		for d := range w {
			scores[i] += w[d] * o.Attributes[d]
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	for i := range got {
		if math.Abs(got[i].Score-scores[i]) > 1e-12 {
			t.Fatalf("rank %d: score %v, want %v", i, got[i].Score, scores[i])
		}
	}
	// Non-increasing order.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score+1e-12 {
			t.Fatal("TopK order violated")
		}
	}
}

func TestTopKValidation(t *testing.T) {
	objects := GenerateObjects(Independent, 10, 2, 95)
	if _, err := TopK(objects, Function{Weights: []float64{1, 2, 3}}, 3, false); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := TopK(objects, Function{Weights: []float64{-1, 1}}, 3, false); err == nil {
		t.Error("negative weight should fail")
	}
	if got, err := TopK(objects, Function{Weights: []float64{1, 1}}, 0, false); err != nil || got != nil {
		t.Error("k=0 should return nothing")
	}
	if got, err := TopK(nil, Function{Weights: []float64{1, 1}}, 3, false); err != nil || got != nil {
		t.Error("no objects should return nothing")
	}
}

func TestTopKGammaScalesScores(t *testing.T) {
	objects := GenerateObjects(Independent, 50, 2, 97)
	base, err := TopK(objects, Function{Weights: []float64{1, 1}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := TopK(objects, Function{Weights: []float64{1, 1}, Gamma: 4}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if math.Abs(boosted[i].Score-4*base[i].Score) > 1e-9 {
			t.Fatalf("gamma should scale scores: %v vs %v", boosted[i].Score, base[i].Score)
		}
		if boosted[i].Object.ID != base[i].Object.ID {
			t.Fatal("gamma must not change the ranking")
		}
	}
}

func TestStableOracleMatchesSolver(t *testing.T) {
	objects := GenerateObjects(Independent, 60, 3, 99)
	functions := GenerateFunctions(25, 3, 100)
	oracle, err := StableOracle(objects, functions)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != len(res.Pairs) {
		t.Fatalf("oracle %d pairs, solver %d", len(oracle), len(res.Pairs))
	}
	key := func(p Pair) [2]uint64 { return [2]uint64{p.FunctionID, p.ObjectID} }
	want := map[[2]uint64]bool{}
	for _, p := range oracle {
		want[key(p)] = true
	}
	for _, p := range res.Pairs {
		if !want[key(p)] {
			t.Fatalf("solver pair %+v missing from oracle", p)
		}
	}
}
