package fairassign

import (
	"testing"
)

func TestProgressiveMatcherBasics(t *testing.T) {
	objects := GenerateObjects(Independent, 50, 3, 61)
	functions := GenerateFunctions(80, 3, 62)
	m, err := NewProgressiveMatcher(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matched := map[uint64]bool{}
	count := 0
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if matched[p.ObjectID] {
			t.Fatalf("object %d assigned twice", p.ObjectID)
		}
		matched[p.ObjectID] = true
		count++
	}
	if count != 50 {
		t.Fatalf("matched %d pairs, want 50 (objects are the scarce side)", count)
	}

	// Releasing more stock reopens the matching for the 30 unmatched
	// functions.
	extra := GenerateObjects(Independent, 40, 3, 63)
	for i := range extra {
		extra[i].ID += 1000
	}
	for _, o := range extra {
		if err := m.AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	more := 0
	for {
		_, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		more++
	}
	if more != 30 {
		t.Fatalf("after release: matched %d more, want 30 (functions now scarce)", more)
	}
	if s := m.Stats(); s.Loops == 0 || s.CPUTime <= 0 {
		t.Errorf("stats not tracked: %+v", s)
	}
}

func TestProgressiveMatcherAgreesWithSolver(t *testing.T) {
	objects := GenerateObjects(AntiCorrelated, 200, 3, 71)
	functions := GenerateFunctions(60, 3, 72)
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewProgressiveMatcher(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, p)
	}
	if len(got) != len(want.Pairs) {
		t.Fatalf("progressive %d pairs, solver %d", len(got), len(want.Pairs))
	}
	for i := range got {
		if got[i] != want.Pairs[i] {
			t.Fatalf("pair %d: %+v vs %+v", i, got[i], want.Pairs[i])
		}
	}
}
