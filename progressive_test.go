package fairassign

import (
	"sort"
	"testing"
)

// drainMatcher pulls every available pair from a progressive matcher.
func drainMatcher(t *testing.T, m *ProgressiveMatcher) []Pair {
	t.Helper()
	var out []Pair
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// assertNonIncreasingScores checks the streaming-order guarantee.
func assertNonIncreasingScores(t *testing.T, pairs []Pair) {
	t.Helper()
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Fatalf("score order violated at %d: %v emitted after %v",
				i, pairs[i].Score, pairs[i-1].Score)
		}
	}
}

// assertMatchesBatch checks that a progressive stream equals the batch
// Solve result element for element once the batch result is put in the
// greedy emission order (descending score, ties by ascending IDs).
func assertMatchesBatch(t *testing.T, got []Pair, batch *Result) {
	t.Helper()
	want := make([]Pair, len(batch.Pairs))
	copy(want, batch.Pairs)
	sort.Slice(want, func(i, j int) bool {
		if want[i].Score != want[j].Score {
			return want[i].Score > want[j].Score
		}
		if want[i].FunctionID != want[j].FunctionID {
			return want[i].FunctionID < want[j].FunctionID
		}
		return want[i].ObjectID < want[j].ObjectID
	})
	if len(got) != len(want) {
		t.Fatalf("progressive %d pairs, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: progressive %+v, batch %+v", i, got[i], want[i])
		}
	}
}

func TestProgressiveMatcherBasics(t *testing.T) {
	objects := GenerateObjects(Independent, 50, 3, 61)
	functions := GenerateFunctions(80, 3, 62)
	m, err := NewProgressiveMatcher(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matched := map[uint64]bool{}
	count := 0
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if matched[p.ObjectID] {
			t.Fatalf("object %d assigned twice", p.ObjectID)
		}
		matched[p.ObjectID] = true
		count++
	}
	if count != 50 {
		t.Fatalf("matched %d pairs, want 50 (objects are the scarce side)", count)
	}

	// Releasing more stock reopens the matching for the 30 unmatched
	// functions.
	extra := GenerateObjects(Independent, 40, 3, 63)
	for i := range extra {
		extra[i].ID += 1000
	}
	for _, o := range extra {
		if err := m.AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	more := 0
	for {
		_, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		more++
	}
	if more != 30 {
		t.Fatalf("after release: matched %d more, want 30 (functions now scarce)", more)
	}
	if s := m.Stats(); s.Loops == 0 || s.CPUTime <= 0 {
		t.Errorf("stats not tracked: %+v", s)
	}
}

func TestProgressiveMatcherAgreesWithSolver(t *testing.T) {
	objects := GenerateObjects(AntiCorrelated, 200, 3, 71)
	functions := GenerateFunctions(60, 3, 72)
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewProgressiveMatcher(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainMatcher(t, m)
	assertNonIncreasingScores(t, got)
	assertMatchesBatch(t, got, want)
}

// TestProgressiveMatcherScoreOrderAcrossDistributions locks the
// streaming-order guarantee on every object distribution.
func TestProgressiveMatcherScoreOrderAcrossDistributions(t *testing.T) {
	for _, kind := range []Distribution{Independent, Correlated, AntiCorrelated} {
		t.Run(string(kind), func(t *testing.T) {
			objects := GenerateObjects(kind, 150, 4, 81)
			functions := GenerateFunctions(40, 4, 82)
			solver, err := NewSolver(objects, functions, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := solver.Solve()
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewProgressiveMatcher(objects, functions, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := drainMatcher(t, m)
			assertNonIncreasingScores(t, got)
			assertMatchesBatch(t, got, want)
		})
	}
}

// TestProgressiveMatcherCapacitated checks both halves of the streaming
// contract under capacities on both sides: non-increasing score order
// and agreement with the capacitated batch result.
func TestProgressiveMatcherCapacitated(t *testing.T) {
	objects := GenerateObjects(Independent, 120, 3, 91)
	for i := range objects {
		objects[i].Capacity = 1 + i%3
	}
	functions := GenerateFunctions(50, 3, 92)
	for i := range functions {
		functions[i].Capacity = 1 + i%4
	}
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewProgressiveMatcher(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainMatcher(t, m)
	if len(got) == 0 {
		t.Fatal("no pairs streamed")
	}
	assertNonIncreasingScores(t, got)
	assertMatchesBatch(t, got, want)
	if err := solver.Verify(got); err != nil {
		t.Fatal(err)
	}
}

// TestProgressiveMatcherWorkers checks the stream is unchanged when the
// engine runs parallel.
func TestProgressiveMatcherWorkers(t *testing.T) {
	objects := GenerateObjects(AntiCorrelated, 150, 3, 93)
	functions := GenerateFunctions(40, 3, 94)
	run := func(workers int) []Pair {
		m, err := NewProgressiveMatcher(objects, functions, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return drainMatcher(t, m)
	}
	seq, par := run(0), run(4)
	if len(seq) != len(par) {
		t.Fatalf("%d pairs sequential, %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}
