// Marketplace demonstrates the dynamic extension (the paper's Section 8
// future work): a housing agency serves a stable matching while new
// apartment blocks are still being released. Buyers are matched on
// demand; each release makes previously unmatchable buyers eligible
// again.
//
// Run with: go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairassign"
)

func main() {
	const dims = 4
	rng := rand.New(rand.NewSource(21))

	// Phase 1 stock: a small initial release.
	initial := fairassign.GenerateObjects(fairassign.Independent, 120, dims, 51)

	// 300 buyers, more than the initial stock can serve.
	buyers := make([]fairassign.Function, 300)
	for i := range buyers {
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64()
		}
		buyers[i] = fairassign.Function{ID: uint64(i + 1), Weights: w}
	}

	m, err := fairassign.NewProgressiveMatcher(initial, buyers, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}

	serve := func(phase string) int {
		n := 0
		for {
			_, ok, err := m.Next()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		fmt.Printf("%s: matched %d buyers\n", phase, n)
		return n
	}

	total := serve("phase 1 (120 units released)")

	// Phase 2: a better block of 100 units is released.
	release := fairassign.GenerateObjects(fairassign.Correlated, 100, dims, 52)
	for i := range release {
		release[i].ID = uint64(100000 + i)
	}
	for _, o := range release {
		if err := m.AddObject(o); err != nil {
			log.Fatal(err)
		}
	}
	total += serve("phase 2 (+100 units)")

	// Phase 3: the final tower opens with capacity units (identical
	// apartments on each floor plan).
	tower := fairassign.GenerateObjects(fairassign.Independent, 20, dims, 53)
	for i := range tower {
		tower[i].ID = uint64(200000 + i)
		tower[i].Capacity = 5
	}
	for _, o := range tower {
		if err := m.AddObject(o); err != nil {
			log.Fatal(err)
		}
	}
	total += serve("phase 3 (+20 floor plans × 5 units)")

	stats := m.Stats()
	fmt.Printf("total matched: %d of %d buyers\n", total, len(buyers))
	fmt.Printf("cost: %d simulated I/Os, %v CPU, %d loops\n",
		stats.IOAccesses, stats.CPUTime, stats.Loops)
}
