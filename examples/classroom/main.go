// Classroom simulates the paper's classroom-allocation scenario: before
// the exam period, instructors declare preferences over room capacity,
// equipment, location and acoustics, and the administration computes a
// fair assignment. Several instructors teach multiple courses (function
// capacities), and the example cross-checks SB against the Brute Force
// baseline — same matching, different cost.
//
// Run with: go run ./examples/classroom
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"fairassign"
)

func main() {
	const (
		numRooms       = 1500
		numInstructors = 300
		dims           = 4 // capacity, equipment, location, acoustics
	)
	rng := rand.New(rand.NewSource(3))

	rooms := fairassign.GenerateObjects(fairassign.Correlated, numRooms, dims, 99)

	instructors := make([]fairassign.Function, numInstructors)
	for i := range instructors {
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64()
		}
		instructors[i] = fairassign.Function{
			ID:       uint64(i + 1),
			Weights:  w,
			Capacity: 1 + rng.Intn(3), // teaches 1-3 courses
		}
	}

	run := func(alg fairassign.Algorithm) *fairassign.Result {
		solver, err := fairassign.NewSolver(rooms, instructors, fairassign.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve()
		if err != nil {
			log.Fatal(err)
		}
		if err := solver.Verify(res.Pairs); err != nil {
			log.Fatalf("%s: unstable: %v", alg, err)
		}
		return res
	}

	sb := run(fairassign.SB)
	bf := run(fairassign.BruteForce)

	fmt.Printf("rooms: %d, instructors: %d (with course loads), slots assigned: %d\n",
		numRooms, numInstructors, len(sb.Pairs))
	fmt.Printf("SB:          %6d I/Os, %12v CPU\n", sb.Stats.IOAccesses, sb.Stats.CPUTime)
	fmt.Printf("Brute Force: %6d I/Os, %12v CPU\n", bf.Stats.IOAccesses, bf.Stats.CPUTime)

	// Room data contains duplicate top-end rooms (values clamp at 1.0),
	// so several equally good stable matchings exist that differ only in
	// which identical room an instructor receives. The matchings must
	// agree on every assigned score.
	if !sameScores(sb.Pairs, bf.Pairs) {
		log.Fatal("algorithms disagree on assignment quality — should be impossible")
	}
	fmt.Println("both algorithms produce equally good stable matchings")
}

func sameScores(a, b []fairassign.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]float64, len(a))
	bs := make([]float64, len(b))
	for i := range a {
		as[i], bs[i] = a[i].Score, b[i].Score
	}
	sort.Float64s(as)
	sort.Float64s(bs)
	for i := range as {
		if diff := as[i] - bs[i]; diff > 1e-9 || diff < -1e-9 {
			return false
		}
	}
	return true
}
