// Internship simulates the paper's motivating scenario at scale: at the
// end of the academic year, thousands of students search and apply for
// available positions based on their preferences (salary, company
// standing, mentoring, location convenience), and companies offer
// batches of identical positions (object capacities, Section 6.1).
//
// Run with: go run ./examples/internship
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairassign"
)

func main() {
	const (
		numCompanies  = 400
		numStudents   = 2500
		dims          = 4 // salary, standing, mentoring, location
		positionsEach = 8 // up to 8 identical openings per company
	)
	rng := rand.New(rand.NewSource(7))

	// Companies post batches of identical positions: one object with a
	// capacity instead of `positionsEach` duplicates — the Section 6.1
	// optimization.
	positions := make([]fairassign.Object, numCompanies)
	for i := range positions {
		attrs := make([]float64, dims)
		quality := 0.3 + 0.7*rng.Float64() // good companies are good at most things
		for d := range attrs {
			v := quality + 0.25*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			attrs[d] = v
		}
		positions[i] = fairassign.Object{
			ID:         uint64(i + 1),
			Attributes: attrs,
			Capacity:   1 + rng.Intn(positionsEach),
		}
	}

	// Students fill in the preference form; weights are normalized by the
	// solver so no student is favored.
	students := make([]fairassign.Function, numStudents)
	for i := range students {
		w := make([]float64, dims)
		for d := range w {
			w[d] = 1 + float64(rng.Intn(5)) // 1..5 sliders, as in Table 1
		}
		students[i] = fairassign.Function{ID: uint64(i + 1), Weights: w}
	}

	solver, err := fairassign.NewSolver(positions, students, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := solver.Solve()
	if err != nil {
		log.Fatal(err)
	}

	totalOpenings := 0
	for _, p := range positions {
		totalOpenings += p.Capacity
	}
	fmt.Printf("students: %d, companies: %d, openings: %d\n",
		numStudents, numCompanies, totalOpenings)
	fmt.Printf("assigned: %d students (stable matching)\n", len(result.Pairs))
	fmt.Printf("cost: %d simulated I/Os, %v CPU, %d loops\n",
		result.Stats.IOAccesses, result.Stats.CPUTime, result.Stats.Loops)

	// The earliest assignments are the happiest matches: highest scores.
	fmt.Println("first five assignments (most contested matches):")
	for _, p := range result.Pairs[:5] {
		fmt.Printf("  student %4d -> company %3d  (score %.3f)\n",
			p.FunctionID, p.ObjectID, p.Score)
	}
	if err := solver.Verify(result.Pairs); err != nil {
		log.Fatalf("assignment not stable: %v", err)
	}
	fmt.Println("verified: matching is stable")
}
