// Oncall assigns engineers to on-call shifts with an egalitarian
// objective. Each shift is described by "larger is better" qualities —
// rest opportunity, daylight overlap, handoff quality, load forecast —
// and most engineers don't optimize a weighted average: a shift is only
// as good as its worst property. That is the Minimax() scorer (an
// order-weighted average with all weight on the worst attribute), the
// minimax fairness objective of the ordinal-preference literature.
//
// The example mixes preference styles in one stable assignment — the
// point of pluggable scoring families: egalitarians (Minimax), a few
// optimists (Best), and some engineers with explicit linear trade-offs
// all compete on the same score scale. Seniors carry a Gamma priority.
// It then shows the same population on a long-lived Workspace: a new
// egalitarian hire arrives and the matching is repaired in place, not
// re-solved.
//
// Run with: go run ./examples/oncall
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"fairassign"
)

func main() {
	const (
		numShifts    = 400
		numEngineers = 90
		dims         = 4 // rest, daylight, handoff, load forecast
	)
	rng := rand.New(rand.NewSource(7))

	// Shift qualities trade off against each other (a quiet shift tends
	// to be a night shift), so use the anti-correlated generator.
	shifts := fairassign.GenerateObjects(fairassign.AntiCorrelated, numShifts, dims, 11)

	engineers := make([]fairassign.Function, numEngineers)
	styles := map[string]int{}
	for i := range engineers {
		e := fairassign.Function{
			ID:       uint64(i + 1),
			Capacity: 1 + rng.Intn(4), // covers 1-4 shifts this cycle
		}
		switch r := rng.Float64(); {
		case r < 0.6:
			// Egalitarian: judge a shift by its worst quality.
			e.Scorer = fairassign.Minimax()
			styles["minimax"]++
		case r < 0.75:
			// Optimist: one great property is enough.
			e.Scorer = fairassign.Best()
			styles["best"]++
		default:
			// Explicit linear trade-off (normalized by the solver).
			w := make([]float64, dims)
			for d := range w {
				w[d] = rng.Float64()
			}
			e.Weights = w
			styles["linear"]++
		}
		if i%10 == 0 {
			e.Gamma = 2 // senior rotation: priority multiplier
		}
		engineers[i] = e
	}

	solver, err := fairassign.NewSolver(shifts, engineers, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		log.Fatal(err)
	}
	if err := solver.Verify(res.Pairs); err != nil {
		log.Fatalf("unstable: %v", err)
	}

	fmt.Printf("assigned %d shift slots to %d engineers (styles: %d minimax, %d best, %d linear)\n",
		len(res.Pairs), numEngineers, styles["minimax"], styles["best"], styles["linear"])

	// Egalitarian yardstick: the minimax engineers' scores ARE their
	// worst shift attribute, so the distribution below is the fairness
	// the rotation achieved.
	worst := 1.0
	var minimaxScores []float64
	byFunc := map[uint64][]fairassign.Pair{}
	for _, p := range res.Pairs {
		byFunc[p.FunctionID] = append(byFunc[p.FunctionID], p)
	}
	for _, e := range engineers {
		if e.Scorer == nil || e.Scorer.String() != "minimax" {
			continue
		}
		for _, p := range byFunc[e.ID] {
			s := p.Score
			if e.Gamma > 0 {
				s /= e.Gamma // report the raw worst-attribute value
			}
			minimaxScores = append(minimaxScores, s)
			if s < worst {
				worst = s
			}
		}
	}
	sort.Float64s(minimaxScores)
	fmt.Printf("egalitarian outcomes: worst slot %.3f, median %.3f, best %.3f\n",
		worst, minimaxScores[len(minimaxScores)/2], minimaxScores[len(minimaxScores)-1])

	// Dynamic form: the same population on a Workspace; a new
	// egalitarian hire joins mid-cycle and chain repair re-stabilizes
	// the rotation in place.
	ws, err := fairassign.NewWorkspace(shifts, engineers, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ws.Close()
	before := ws.Stats()
	if err := ws.AddFunction(fairassign.Function{ID: 5000, Scorer: fairassign.Minimax(), Capacity: 2}); err != nil {
		log.Fatal(err)
	}
	if err := ws.Verify(); err != nil {
		log.Fatalf("workspace unstable after hire: %v", err)
	}
	after := ws.Stats()
	var hire []fairassign.Pair
	for _, p := range ws.Assignment() {
		if p.FunctionID == 5000 {
			hire = append(hire, p)
		}
	}
	fmt.Printf("new egalitarian hire picked up %d shifts via %d chain steps (no re-solve; %d assigned total)\n",
		len(hire), after.ChainSteps-before.ChainSteps, after.AssignedUnits)
}
