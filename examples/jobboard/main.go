// Jobboard demonstrates the incremental Workspace on a live job board:
// open positions are the objects (scored on salary, remote-friendliness,
// growth, and stability — larger is better), candidates are the
// preference functions, and the board keeps the stable matching current
// while positions are filled or withdrawn and candidates sign up or
// drop out. Every mutation is absorbed by in-place chain repair — no
// from-scratch re-solve — and the final matching is verified stable.
//
// Run with: go run ./examples/jobboard
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairassign"
)

const dims = 4 // salary, remote, growth, stability

func randomCandidate(rng *rand.Rand, id uint64) fairassign.Function {
	w := make([]float64, dims)
	for d := range w {
		w[d] = 0.1 + rng.Float64()
	}
	return fairassign.Function{ID: id, Weights: w} // normalized by the workspace
}

func main() {
	rng := rand.New(rand.NewSource(2009))

	// Day 0: 400 open positions, 60 registered candidates.
	positions := fairassign.GenerateObjects(fairassign.AntiCorrelated, 400, dims, 7)
	candidates := make([]fairassign.Function, 60)
	for i := range candidates {
		candidates[i] = randomCandidate(rng, uint64(i+1))
	}

	board, err := fairassign.NewWorkspace(positions, candidates, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer board.Close()
	fmt.Printf("day 0: %d positions, %d candidates, %d matched\n",
		board.Stats().Objects, board.Stats().Functions, len(board.Assignment()))

	nextID := uint64(100_000)

	// A week of churn: hires close positions, new roles are posted,
	// candidates come and go — the matching is repaired after each event.
	for day := 1; day <= 7; day++ {
		// Some matched positions are filled externally and withdrawn.
		hires := 0
		for _, pair := range board.Assignment() {
			if hires == 3 {
				break
			}
			if err := board.RemoveObject(pair.ObjectID); err != nil {
				log.Fatal(err)
			}
			hires++
		}

		// New openings are posted.
		posted := fairassign.GenerateObjects(fairassign.Independent, 5, dims, int64(day))
		for _, p := range posted {
			nextID++
			p.ID = nextID
			if err := board.AddObject(p); err != nil {
				log.Fatal(err)
			}
		}

		// Candidates register...
		for i := 0; i < 4; i++ {
			nextID++
			if err := board.AddFunction(randomCandidate(rng, nextID)); err != nil {
				log.Fatal(err)
			}
		}
		// ...and one drops out.
		if asg := board.Assignment(); len(asg) > 0 {
			if err := board.RemoveFunction(asg[len(asg)-1].FunctionID); err != nil {
				log.Fatal(err)
			}
		}

		s := board.Stats()
		fmt.Printf("day %d: %d positions, %d candidates, %d matched (frontier %d)\n",
			day, s.Objects, s.Functions, s.AssignedUnits, s.AvailableFrontier)
	}

	// The matching stayed stable through every event — audit it.
	if err := board.Verify(); err != nil {
		log.Fatalf("unstable matching: %v", err)
	}
	s := board.Stats()
	fmt.Printf("week done: %d mutations repaired with %d chain steps and %d searches; full solves: %d\n",
		s.Mutations, s.ChainSteps, s.Searches, s.Resolves)

	top := board.Assignment()
	if len(top) > 3 {
		top = top[:3]
	}
	fmt.Println("current best matches:")
	for _, p := range top {
		fmt.Printf("  candidate %d -> position %d (score %.3f)\n", p.FunctionID, p.ObjectID, p.Score)
	}
}
