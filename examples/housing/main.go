// Housing simulates a public-housing allocation (a Section 1 motivating
// application): a government releases new apartments; interested
// applicants specify preferences over size, floor, transit access,
// neighborhood quality and affordability; and applicants carry
// priorities — e.g. years on the waiting list — expressed as the γ
// multiplier of Section 6.2. The two-skyline variant of SB is the
// fastest solver for prioritized assignments.
//
// Run with: go run ./examples/housing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairassign"
)

func main() {
	const (
		numApartments = 3000
		numApplicants = 1200
		dims          = 5
	)
	rng := rand.New(rand.NewSource(11))

	// Apartments: realistic trade-offs (bigger or better located units
	// are less affordable → anti-correlated attributes, the hard case).
	apartments := fairassign.GenerateObjects(fairassign.AntiCorrelated, numApartments, dims, 42)

	// Applicants: preference sliders, plus a waiting-time priority class
	// 1..4. A four-year waiter beats a first-year applicant with the same
	// tastes on any contested unit.
	applicants := make([]fairassign.Function, numApplicants)
	for i := range applicants {
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64()
		}
		applicants[i] = fairassign.Function{
			ID:      uint64(i + 1),
			Weights: w,
			Gamma:   float64(1 + rng.Intn(4)),
		}
	}

	solver, err := fairassign.NewSolver(apartments, applicants, fairassign.Options{
		Algorithm: fairassign.TwoSkylines,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := solver.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("apartments: %d, applicants: %d, assigned: %d\n",
		numApartments, numApplicants, len(result.Pairs))
	fmt.Printf("cost: %d simulated I/Os, %v CPU\n",
		result.Stats.IOAccesses, result.Stats.CPUTime)

	// Show that priority classes are served in order on average.
	classScore := map[float64][]float64{}
	byID := map[uint64]fairassign.Function{}
	for _, a := range applicants {
		byID[a.ID] = a
	}
	for _, p := range result.Pairs {
		g := byID[p.FunctionID].Gamma
		classScore[g] = append(classScore[g], p.Score/g) // underlying quality
	}
	fmt.Println("average apartment quality by priority class:")
	for g := 1.0; g <= 4; g++ {
		scores := classScore[g]
		sum := 0.0
		for _, s := range scores {
			sum += s
		}
		fmt.Printf("  waited %d years (γ=%.0f): %4d applicants, mean score %.4f\n",
			int(g), g, len(scores), sum/float64(len(scores)))
	}
	if err := solver.Verify(result.Pairs); err != nil {
		log.Fatalf("assignment not stable: %v", err)
	}
	fmt.Println("verified: matching is stable under priorities")
}
