// Dashboard demonstrates the Workspace's snapshot-isolated concurrency:
// a rental marketplace keeps its stable matching repaired while
// dashboard readers — analytics panels, per-user pages, a ranked
// "best listings" widget — run concurrently against immutable snapshot
// Views. One writer goroutine churns listings and renters; reader
// goroutines take a View each, query it, and close it. A pinned
// "end-of-day report" View demonstrates that a snapshot keeps
// returning byte-identical answers while dozens of mutations land
// after it.
//
// Run with: go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"fairassign"
)

const dims = 3 // price value, location score, condition

func randomRenter(rng *rand.Rand, id uint64) fairassign.Function {
	w := make([]float64, dims)
	for d := range w {
		w[d] = 0.1 + rng.Float64()
	}
	return fairassign.Function{ID: id, Weights: w}
}

func main() {
	rng := rand.New(rand.NewSource(1122))

	listings := fairassign.GenerateObjects(fairassign.Independent, 500, dims, 9)
	renters := make([]fairassign.Function, 80)
	for i := range renters {
		renters[i] = randomRenter(rng, uint64(i+1))
	}
	market, err := fairassign.NewWorkspace(listings, renters, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer market.Close()

	// Pin the morning report: this View must answer identically all day.
	report, err := market.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer report.Close()
	morning := report.Assignment()
	fmt.Printf("morning report: epoch %d, %d listings, %d renters, %d matched\n",
		report.Epoch(), report.Stats().Objects, report.Stats().Functions, len(morning))

	// Dashboard readers: each iteration takes a fresh snapshot, renders
	// its "panels" from it, and closes it. Readers never block the
	// writer and never see a half-repaired matching.
	var (
		done    atomic.Bool
		reads   atomic.Int64
		renders sync.WaitGroup
	)
	for r := 0; r < 4; r++ {
		renders.Add(1)
		go func(r int) {
			defer renders.Done()
			prng := rand.New(rand.NewSource(int64(r) + 7))
			for !done.Load() {
				v, err := market.Snapshot()
				if err != nil {
					log.Printf("reader %d: %v", r, err)
					return
				}
				st := v.Stats()
				pairs := v.Assignment()
				if len(pairs) != st.AssignedUnits {
					log.Fatalf("reader %d: torn view: %d pairs vs %d units", r, len(pairs), st.AssignedUnits)
				}
				// Per-user panel and a ranked widget over the pinned index.
				renter := renters[prng.Intn(len(renters))]
				_ = v.AssignmentOf(renter.ID)
				if _, err := v.TopK(renter, 5); err != nil {
					log.Fatalf("reader %d: TopK: %v", r, err)
				}
				v.Close()
				reads.Add(1)
			}
		}(r)
	}

	// The writer: a day of churn. Listings are taken off the market and
	// replaced; renters come and go. Every mutation repairs the matching
	// and publishes a new epoch for the readers.
	nextID := uint64(1_000_000)
	mutations := 0
	for hour := 1; hour <= 8; hour++ {
		for e := 0; e < 10; e++ {
			pairs := market.Assignment()
			victim := pairs[rng.Intn(len(pairs))].ObjectID
			if err := market.RemoveObject(victim); err != nil {
				log.Fatal(err)
			}
			nextID++
			attrs := make([]float64, dims)
			for d := range attrs {
				attrs[d] = rng.Float64()
			}
			if err := market.AddObject(fairassign.Object{ID: nextID, Attributes: attrs}); err != nil {
				log.Fatal(err)
			}
			nextID++
			if err := market.AddFunction(randomRenter(rng, nextID)); err != nil {
				log.Fatal(err)
			}
			mutations += 3
		}
		live, _ := market.Snapshot()
		fmt.Printf("hour %d: epoch %d, %d matched, frontier %d, %d snapshot reads so far\n",
			hour, live.Epoch(), live.Stats().AssignedUnits, live.Stats().AvailableFrontier, reads.Load())
		live.Close()
	}
	done.Store(true)
	renders.Wait()

	// The pinned morning report is still byte-identical.
	evening := report.Assignment()
	if len(evening) != len(morning) {
		log.Fatalf("report drifted: %d pairs vs %d", len(evening), len(morning))
	}
	for i := range evening {
		if evening[i] != morning[i] {
			log.Fatalf("report drifted at pair %d", i)
		}
	}
	if err := report.Verify(); err != nil {
		log.Fatalf("morning report no longer stable for its own epoch: %v", err)
	}
	if err := market.Verify(); err != nil {
		log.Fatalf("live matching unstable: %v", err)
	}
	fmt.Printf("day over: %d mutations absorbed, %d concurrent snapshot reads, morning report still byte-identical ✓\n",
		mutations, reads.Load())
}
