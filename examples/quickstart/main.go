// Quickstart reproduces the paper's running example (Figure 1): three
// students with different salary/standing preferences compete for four
// internship positions, and the system computes the fair (stable)
// assignment.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairassign"
)

func main() {
	// Four internship positions with two attributes: offered salary (X)
	// and company standing (Y), both normalized to [0,1].
	positions := []fairassign.Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}}, // a
		{ID: 2, Attributes: []float64{0.2, 0.7}}, // b
		{ID: 3, Attributes: []float64{0.8, 0.2}}, // c
		{ID: 4, Attributes: []float64{0.4, 0.4}}, // d
	}
	names := map[uint64]string{1: "a", 2: "b", 3: "c", 4: "d"}

	// Three students' preferences. The form of Table 1 — "Salary: 4/5,
	// Standing: 1/5" — translates to weights (0.8, 0.2) and so on.
	students := []fairassign.Function{
		{ID: 1, Weights: []float64{0.8, 0.2}}, // f1: salary matters most
		{ID: 2, Weights: []float64{0.2, 0.8}}, // f2: prestige matters most
		{ID: 3, Weights: []float64{0.5, 0.5}}, // f3: balanced
	}

	solver, err := fairassign.NewSolver(positions, students, fairassign.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := solver.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Internship assignment (paper Figure 1):")
	for _, p := range result.Pairs {
		fmt.Printf("  student f%d gets position %s (score %.2f)\n",
			p.FunctionID, names[p.ObjectID], p.Score)
	}
	if err := solver.Verify(result.Pairs); err != nil {
		log.Fatalf("assignment not stable: %v", err)
	}
	fmt.Println("verified: no student/position pair would rather have each other")

	// Expected, as in the paper: f1 takes c (0.68, the global best pair),
	// then f2 takes b, and f3 takes a. Object d is never even read from
	// the index — it is dominated by a, the core insight behind SB.
}
