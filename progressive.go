package fairassign

import (
	"fairassign/internal/assign"
	"fairassign/internal/geom"
)

// ProgressiveMatcher emits stable pairs on demand and accepts new objects
// between pulls — the dynamic setting the paper sketches as future work
// (Section 8): a system where objects are released over time (new housing
// stock, newly posted positions) while the matching is being served.
//
// Every emitted pair was stable with respect to the participants present
// when it was discovered; an arrival influences only pairs discovered
// after it. After the matching completes (Next returns ok == false), a
// further AddObject makes additional pairs available again.
type ProgressiveMatcher struct {
	inner *assign.Progressive
}

// NewProgressiveMatcher prepares a progressive matcher. The options are
// interpreted as for NewSolver; the algorithm is always SB.
func NewProgressiveMatcher(objects []Object, functions []Function, opts Options) (*ProgressiveMatcher, error) {
	solver, err := NewSolver(objects, functions, Options{
		PageSize:          opts.PageSize,
		BufferFraction:    opts.BufferFraction,
		OmegaFraction:     opts.OmegaFraction,
		SkipNormalization: opts.SkipNormalization,
		Workers:           opts.Workers,
		BuildWorkers:      opts.BuildWorkers,
	})
	if err != nil {
		return nil, err
	}
	inner, err := assign.NewProgressive(solver.problem, assign.Config{
		PageSize:     opts.PageSize,
		BufferFrac:   opts.BufferFraction,
		OmegaFrac:    opts.OmegaFraction,
		Workers:      opts.Workers,
		BuildWorkers: opts.BuildWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &ProgressiveMatcher{inner: inner}, nil
}

// AddObject introduces a newly released object.
func (m *ProgressiveMatcher) AddObject(o Object) error {
	return m.inner.AddObject(assign.Object{
		ID:       o.ID,
		Point:    geom.Point(o.Attributes).Clone(),
		Capacity: o.Capacity,
	})
}

// Next returns the next stable pair; ok is false when the matching is
// complete for the current participants.
func (m *ProgressiveMatcher) Next() (Pair, bool, error) {
	p, ok, err := m.inner.Next()
	if err != nil || !ok {
		return Pair{}, false, err
	}
	return Pair{FunctionID: p.FuncID, ObjectID: p.ObjectID, Score: p.Score}, true, nil
}

// Stats reports the work performed so far.
func (m *ProgressiveMatcher) Stats() Stats {
	s := m.inner.Stats()
	return Stats{
		IOAccesses:      s.IO.Accesses(),
		CPUTime:         s.CPUTime,
		PeakMemoryBytes: s.PeakMem,
		Loops:           s.Loops,
		TopKSearches:    s.TopKRuns,
	}
}
