// Benchmarks regenerating every figure of the paper's evaluation
// (Section 7) plus ablations of the design choices called out in
// DESIGN.md. The per-figure benchmarks run the same harness as
// cmd/benchfig at a reduced scale (use the command for full-size runs and
// readable tables); the reported metric is wall-clock per full figure
// sweep.
package fairassign

import (
	"fmt"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/experiments"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// benchScale keeps a full figure sweep in the hundreds of milliseconds;
// shapes (who wins, by what factor) match the full-size runs recorded in
// EXPERIMENTS.md.
const benchScale = 0.01

func benchFigure(b *testing.B, id string) {
	b.Helper()
	params := experiments.Params{Scale: benchScale, Seed: 42}
	run := experiments.Registry[id]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08Optimizations(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig09Dimensionality(b *testing.B) { benchFigure(b, "fig9") }
func BenchmarkFig10FunctionCount(b *testing.B)  { benchFigure(b, "fig10") }
func BenchmarkFig11ObjectCount(b *testing.B)    { benchFigure(b, "fig11") }
func BenchmarkFig12Clusters(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13BufferSize(b *testing.B)     { benchFigure(b, "fig13") }
func BenchmarkFig14Capacities(b *testing.B)     { benchFigure(b, "fig14") }
func BenchmarkFig15Priorities(b *testing.B)     { benchFigure(b, "fig15") }
func BenchmarkFig16RealData(b *testing.B)       { benchFigure(b, "fig16") }
func BenchmarkFig17DiskFunctions(b *testing.B)  { benchFigure(b, "fig17") }

// benchProblem builds a default anti-correlated instance.
func benchProblem(nf, no, dims int) *assign.Problem {
	return &assign.Problem{
		Dims:      dims,
		Objects:   datagen.Objects(datagen.AntiCorrelated, no, dims, 1),
		Functions: datagen.Functions(nf, dims, 2),
	}
}

// BenchmarkAlgorithms compares the end-to-end algorithms head to head on
// one default instance (the headline Fig. 9 comparison as a bench).
func BenchmarkAlgorithms(b *testing.B) {
	p := benchProblem(100, 2000, 4)
	for _, alg := range []struct {
		name string
		run  func(*assign.Problem, assign.Config) (*assign.Result, error)
	}{
		{"SB", assign.SB},
		{"BruteForce", assign.BruteForce},
		{"Chain", assign.Chain},
		{"SBAlt", assign.SBAlt},
		{"TwoSkylines", assign.SBTwoSkylines},
	} {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.run(p, assign.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSBWorkers compares the sequential engine against the worker
// pool on the large anti-correlated configuration (big skylines, so the
// per-object TA searches dominate). The parallel rows must beat
// Workers=1 wall-clock on any machine with GOMAXPROCS >= 4.
func BenchmarkSBWorkers(b *testing.B) {
	p := benchProblem(2000, 10000, 4)
	for _, workers := range []int{1, 2, 4, -1} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == -1 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assign.SB(p, assign.Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveBatch measures multi-tenant throughput: many independent
// problems solved sequentially vs concurrently.
func BenchmarkSolveBatch(b *testing.B) {
	items := make([]BatchItem, 8)
	for i := range items {
		seed := int64(300 + i)
		items[i] = BatchItem{
			Objects:   GenerateObjects(AntiCorrelated, 2000, 4, seed),
			Functions: GenerateFunctions(300, 4, seed+1),
		}
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, r := range SolveBatch(items, BatchOptions{Parallelism: par}) {
					if r.Err != nil {
						b.Fatalf("item %d: %v", j, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationOmega sweeps the Ω knob of the resumable TA search
// (Section 5.1): smaller queues save memory but force restarts.
func BenchmarkAblationOmega(b *testing.B) {
	p := benchProblem(400, 4000, 4)
	for _, omega := range []float64{0.001, 0.025, 1.0} {
		b.Run(fmt.Sprintf("omega=%g", omega), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assign.SB(p, assign.Config{OmegaFrac: omega}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMultiPair isolates the Section 5.3 optimization:
// Algorithm 3 (multi-pair per loop) vs Algorithm 1 (single pair).
func BenchmarkAblationMultiPair(b *testing.B) {
	p := benchProblem(150, 2000, 4)
	b.Run("multi-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assign.SB(p, assign.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assign.SBBasic(p, assign.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSkylineMaintenance drains a skyline one object at a
// time under the two maintenance strategies (the Fig. 8 core).
func BenchmarkAblationSkylineMaintenance(b *testing.B) {
	items := make([]rtree.Item, 0, 4000)
	for _, o := range datagen.Objects(datagen.AntiCorrelated, 4000, 3, 7) {
		items = append(items, rtree.Item{ID: o.ID, Point: o.Point})
	}
	build := func() *rtree.Tree {
		store := pagestore.NewMemStore(4096)
		pool := pagestore.NewBufferPool(store, 1<<20)
		tr, err := rtree.BulkLoad(pool, 3, items, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	b.Run("UpdateSkyline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := skyline.NewMaintainer(build(), nil)
			if err != nil {
				b.Fatal(err)
			}
			for m.Size() > 0 {
				if err := m.Remove(m.Skyline()[0].ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("DeltaSky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := skyline.NewDeltaSky(build(), nil)
			if err != nil {
				b.Fatal(err)
			}
			for d.Size() > 0 {
				if err := d.Remove(d.Skyline()[0].ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationPhysicalDelete contrasts physical R-tree deletion
// (delete + condense + reinsert) with the tombstoning the assignment
// algorithms use — the design decision documented in DESIGN.md.
func BenchmarkAblationPhysicalDelete(b *testing.B) {
	objs := datagen.Objects(datagen.Independent, 5000, 3, 9)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	b.Run("physical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := pagestore.NewMemStore(4096)
			pool := pagestore.NewBufferPool(store, 1<<20)
			tr, err := rtree.BulkLoad(pool, 3, items, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, it := range items[:2000] {
				if err := tr.Delete(it); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("tombstone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dead := make(map[uint64]bool, 2000)
			for _, it := range items[:2000] {
				dead[it.ID] = true
			}
			if len(dead) != 2000 {
				b.Fatal("unexpected")
			}
		}
	})
}

// BenchmarkRTree micro-benchmarks the index substrate.
func BenchmarkRTree(b *testing.B) {
	objs := datagen.Objects(datagen.Independent, 20000, 4, 3)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	b.Run("BulkLoad20k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store := pagestore.NewMemStore(4096)
			pool := pagestore.NewBufferPool(store, 1<<20)
			if _, err := rtree.BulkLoad(pool, 4, items, 0.9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Insert", func(b *testing.B) {
		store := pagestore.NewMemStore(4096)
		pool := pagestore.NewBufferPool(store, 1<<20)
		tr, err := rtree.New(pool, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := items[i%len(items)]
			it.ID = uint64(i + 1)
			if err := tr.Insert(it); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSkylineCompute measures initial BBS skyline computation.
func BenchmarkSkylineCompute(b *testing.B) {
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		objs := datagen.Objects(kind, 20000, 4, 5)
		items := make([]rtree.Item, len(objs))
		for i, o := range objs {
			items[i] = rtree.Item{ID: o.ID, Point: o.Point}
		}
		store := pagestore.NewMemStore(4096)
		pool := pagestore.NewBufferPool(store, 1<<20)
		tr, err := rtree.BulkLoad(pool, 4, items, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := skyline.Compute(tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTAReverseTop1 measures the Section 5.1 search in isolation.
func BenchmarkTAReverseTop1(b *testing.B) {
	funcs := datagen.Functions(10000, 4, 11)
	taFuncs := make([]ta.Func, len(funcs))
	for i, f := range funcs {
		taFuncs[i] = ta.Func{ID: f.ID, Weights: f.Weights}
	}
	lists, err := ta.NewLists(taFuncs, 4)
	if err != nil {
		b.Fatal(err)
	}
	objs := datagen.Objects(datagen.AntiCorrelated, 256, 4, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		s := ta.NewSearch(lists, o.Point, 250)
		if _, _, ok := s.Best(); !ok {
			b.Fatal("search failed")
		}
	}
}
