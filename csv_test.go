package fairassign

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadObjectsCSVBasic(t *testing.T) {
	path := writeTemp(t, "1,0.5,0.6\n2,0.2,0.7\n")
	objs, err := LoadObjectsCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].ID != 1 || objs[1].Attributes[1] != 0.7 {
		t.Fatalf("parsed %+v", objs)
	}
}

func TestLoadObjectsCSVSkipsHeader(t *testing.T) {
	path := writeTemp(t, "id,salary,standing\n1,0.5,0.6\n")
	objs, err := LoadObjectsCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].ID != 1 {
		t.Fatalf("parsed %+v", objs)
	}
}

func TestLoadObjectsCSVErrors(t *testing.T) {
	cases := []string{
		"1\n",          // too few columns
		"1,abc\n2,1\n", // bad value
		"1,1\nxx,2\n",  // bad id on a non-header row
	}
	for i, content := range cases {
		path := writeTemp(t, content)
		if _, err := LoadObjectsCSV(path); err == nil {
			t.Errorf("case %d: expected error for %q", i, content)
		}
	}
	if _, err := LoadObjectsCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadFunctionsCSVExtras(t *testing.T) {
	// id, w1, w2, gamma, capacity
	path := writeTemp(t, "1,0.8,0.2,2,5\n2,0.5,0.5,1,1\n")
	funcs, err := LoadFunctionsCSVExt(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("parsed %d functions", len(funcs))
	}
	if funcs[0].Gamma != 2 || funcs[0].Capacity != 5 {
		t.Fatalf("extras not parsed: %+v", funcs[0])
	}
	if len(funcs[0].Weights) != 2 || funcs[0].Weights[0] != 0.8 {
		t.Fatalf("weights wrong: %+v", funcs[0])
	}
	if _, err := LoadFunctionsCSVExt(path, 5); err == nil {
		t.Error("extras out of range should error")
	}
}

func TestLoadFunctionsCSVGammaOnly(t *testing.T) {
	path := writeTemp(t, "7,0.3,0.3,0.4,3\n")
	funcs, err := LoadFunctionsCSVExt(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if funcs[0].Gamma != 3 || len(funcs[0].Weights) != 3 {
		t.Fatalf("parsed %+v", funcs[0])
	}
}

func TestSaveFunctionsCSVRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funcs.csv")
	in := GenerateFunctions(30, 4, 77)
	if err := SaveFunctionsCSV(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadFunctionsCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("lost rows: %d vs %d", len(out), len(in))
	}
	for i := range out {
		if out[i].ID != in[i].ID {
			t.Fatal("ids scrambled")
		}
		for d := range out[i].Weights {
			if out[i].Weights[d] != in[i].Weights[d] {
				t.Fatal("weights lost precision")
			}
		}
	}
}
