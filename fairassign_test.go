package fairassign

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func figure1Problem() ([]Object, []Function) {
	objects := []Object{
		{ID: 1, Attributes: []float64{0.5, 0.6}},
		{ID: 2, Attributes: []float64{0.2, 0.7}},
		{ID: 3, Attributes: []float64{0.8, 0.2}},
		{ID: 4, Attributes: []float64{0.4, 0.4}},
	}
	functions := []Function{
		{ID: 1, Weights: []float64{0.8, 0.2}},
		{ID: 2, Weights: []float64{0.2, 0.8}},
		{ID: 3, Weights: []float64{0.5, 0.5}},
	}
	return objects, functions
}

func TestQuickstartFigure1(t *testing.T) {
	objects, functions := figure1Problem()
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{1: 3, 2: 2, 3: 1}
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if want[p.FunctionID] != p.ObjectID {
			t.Errorf("f%d -> o%d, want o%d", p.FunctionID, p.ObjectID, want[p.FunctionID])
		}
	}
	if err := solver.Verify(res.Pairs); err != nil {
		t.Fatal(err)
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	objects := GenerateObjects(AntiCorrelated, 400, 3, 5)
	functions := GenerateFunctions(60, 3, 6)
	var ref []Pair
	for _, alg := range []Algorithm{SB, BruteForce, Chain, SBAlt, TwoSkylines} {
		solver, err := NewSolver(objects, functions, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Solve()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := solver.Verify(res.Pairs); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		pairs := append([]Pair(nil), res.Pairs...)
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].FunctionID < pairs[j].FunctionID })
		if ref == nil {
			ref = pairs
			continue
		}
		if len(pairs) != len(ref) {
			t.Fatalf("%s: %d pairs, want %d", alg, len(pairs), len(ref))
		}
		for i := range pairs {
			if pairs[i] != ref[i] {
				t.Fatalf("%s: pair %d = %+v, want %+v", alg, i, pairs[i], ref[i])
			}
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	objects, functions := figure1Problem()
	if _, err := NewSolver(objects, functions, Options{Algorithm: "quantum"}); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
}

func TestWeightNormalization(t *testing.T) {
	objects, _ := figure1Problem()
	// Raw slider values 4 and 1 normalize to (0.8, 0.2), as in Table 1.
	functions := []Function{{ID: 1, Weights: []float64{4, 1}}}
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs[0].ObjectID != 3 {
		t.Errorf("normalized weights should pick object c (3), got %d", res.Pairs[0].ObjectID)
	}
	if math.Abs(res.Pairs[0].Score-0.68) > 1e-12 {
		t.Errorf("score = %v, want 0.68", res.Pairs[0].Score)
	}
}

func TestSkipNormalization(t *testing.T) {
	objects, _ := figure1Problem()
	functions := []Function{{ID: 1, Weights: []float64{4, 1}}}
	solver, err := NewSolver(objects, functions, Options{SkipNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Unnormalized: f(c) = 4·0.8 + 1·0.2 = 3.4.
	if math.Abs(res.Pairs[0].Score-3.4) > 1e-12 {
		t.Errorf("score = %v, want 3.4", res.Pairs[0].Score)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := NewSolver(nil, nil, Options{}); err == nil {
		t.Error("empty problem should fail")
	}
	objects := []Object{{ID: 1, Attributes: []float64{0.5, 0.5}}}
	if _, err := NewSolver(objects, []Function{{ID: 1, Weights: []float64{-1, 2}}}, Options{}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewSolver(objects, []Function{{ID: 1, Weights: []float64{0, 0}}}, Options{}); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := NewSolver(objects, []Function{{ID: 1, Weights: []float64{1, 1, 1}}}, Options{}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	objects := GenerateObjects(Independent, 50, 2, 7)
	functions := GenerateFunctions(20, 2, 8)
	solver, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(res.Pairs); err != nil {
		t.Fatal(err)
	}
	tampered := append([]Pair(nil), res.Pairs...)
	tampered[0].ObjectID, tampered[5].ObjectID = tampered[5].ObjectID, tampered[0].ObjectID
	if err := solver.Verify(tampered); err == nil {
		t.Error("Verify should reject a tampered matching")
	}
}

func TestGenerators(t *testing.T) {
	for _, kind := range []Distribution{Independent, Correlated, AntiCorrelated} {
		objs := GenerateObjects(kind, 100, 3, 1)
		if len(objs) != 100 || len(objs[0].Attributes) != 3 {
			t.Fatalf("%s: wrong shape", kind)
		}
	}
	if got := GenerateObjects(ZillowLike, 64, 99, 1); len(got) != 64 || len(got[0].Attributes) != 5 {
		t.Error("zillow generator must produce 5 attributes")
	}
	if got := GenerateObjects(NBALike, 64, 99, 1); len(got) != 64 || len(got[0].Attributes) != 5 {
		t.Error("nba generator must produce 5 attributes")
	}
	funcs := GenerateFunctions(10, 4, 2)
	for _, f := range funcs {
		sum := 0.0
		for _, w := range f.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("function %d weights sum to %v", f.ID, sum)
		}
	}
}

// TestStabilityPropertyQuick is the top-level property test: for random
// instances, the solver output always satisfies Definition 1.
func TestStabilityPropertyQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		no, nf := 2+r.Intn(60), 2+r.Intn(30)
		dims := 2 + r.Intn(3)
		objects := GenerateObjects(Independent, no, dims, seed)
		functions := GenerateFunctions(nf, dims, seed+1)
		// Random capacities and priorities.
		for i := range functions {
			if r.Intn(2) == 0 {
				functions[i].Capacity = 1 + r.Intn(3)
			}
			if r.Intn(2) == 0 {
				functions[i].Gamma = float64(1 + r.Intn(4))
			}
		}
		solver, err := NewSolver(objects, functions, Options{})
		if err != nil {
			return false
		}
		res, err := solver.Solve()
		if err != nil {
			return false
		}
		return solver.Verify(res.Pairs) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveOnCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	objPath := filepath.Join(dir, "objects.csv")
	funcPath := filepath.Join(dir, "functions.csv")
	objects := GenerateObjects(Independent, 80, 3, 11)
	functions := GenerateFunctions(25, 3, 12)
	if err := SaveObjectsCSV(objPath, objects); err != nil {
		t.Fatal(err)
	}
	if err := SaveFunctionsCSV(funcPath, functions); err != nil {
		t.Fatal(err)
	}
	loadedO, err := LoadObjectsCSV(objPath)
	if err != nil {
		t.Fatal(err)
	}
	loadedF, err := LoadFunctionsCSV(funcPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedO) != len(objects) || len(loadedF) != len(functions) {
		t.Fatalf("round trip lost rows: %d/%d objects, %d/%d functions",
			len(loadedO), len(objects), len(loadedF), len(functions))
	}
	for i := range loadedO {
		if loadedO[i].ID != objects[i].ID {
			t.Fatal("object ids scrambled")
		}
		for d := range loadedO[i].Attributes {
			if loadedO[i].Attributes[d] != objects[i].Attributes[d] {
				t.Fatal("object attributes lost precision")
			}
		}
	}

	// Solving from loaded data must match solving from memory.
	s1, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(loadedO, loadedF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Pairs) != len(r2.Pairs) {
		t.Fatal("pair counts differ after CSV round trip")
	}
	for i := range r1.Pairs {
		if r1.Pairs[i] != r2.Pairs[i] {
			t.Fatalf("pair %d differs after CSV round trip", i)
		}
	}
}
